/**
 * @file
 * Regression pins for the R1/R2 XOR registers across flush, partial
 * store and eviction orderings.
 *
 * Every test drives a CPPC-protected cache through a directed sequence
 * in which dirty words enter and leave the array along different paths
 * (conflict eviction, flushAll, coherence downgrade, scrubbing) and
 * asserts the register invariant R1 ^ R2 == XOR of the rotated
 * resident dirty words after every step.  These orderings are exactly
 * where a missing or doubled R2 update hides; the fuzzer found-and-
 * shrunk versions of these sequences are pinned here directed.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "cppc/cppc_scheme.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::ScopedSeed;
using test::smallGeometry;

std::unique_ptr<ProtectionScheme>
makeCppc(unsigned pairs)
{
    CppcConfig cfg;
    cfg.pairs_per_domain = pairs;
    return std::make_unique<CppcScheme>(cfg);
}

CppcScheme *
scheme(Harness &h)
{
    return dynamic_cast<CppcScheme *>(h.cache->scheme());
}

/** Every (domain, pair) register must read as all-zero dirty XOR. */
void
expectAllRegistersClear(Harness &h)
{
    CppcScheme *s = scheme(h);
    const CppcConfig &cfg = s->config();
    WideWord zero = WideWord::fromUint64(0, 8);
    for (unsigned d = 0; d < cfg.num_domains; ++d)
        for (unsigned p = 0; p < cfg.pairs_per_domain; ++p)
            CPPC_ASSERT_EQ(s->registers().dirtyXor(d, p), zero);
}

class XorFlushRegression : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(XorFlushRegression, ConflictEvictionThenFlush)
{
    // store -> conflict eviction (dirty word leaves through onEvict)
    // -> flush of the survivor.  A missed R2 update on either path
    // leaves a stale word folded into the pair.
    Harness h(smallGeometry(), makeCppc(GetParam()));
    CppcScheme *s = scheme(h);
    const Addr kConflict = smallGeometry().size_bytes; // same set, new tag

    h.cache->storeWord(0x40, 0x1111111111111111ull);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    h.cache->storeWord(0x40 + kConflict, 0x2222222222222222ull);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    h.cache->flushAll();
    CPPC_ASSERT_TRUE(s->invariantHolds());
    expectAllRegistersClear(h);
}

TEST_P(XorFlushRegression, PartialStoreThenEvictionThenFlush)
{
    // A sub-unit store performs a read-modify-write against the old
    // word; the follow-up eviction must remove the *merged* word from
    // the registers, not the original.
    Harness h(smallGeometry(), makeCppc(GetParam()));
    CppcScheme *s = scheme(h);
    const Addr kConflict = smallGeometry().size_bytes;

    uint8_t b = 0xa5;
    h.cache->store(0x63, 1, &b); // byte 3 of unit 0x60
    CPPC_ASSERT_TRUE(s->invariantHolds());
    b = 0x5a;
    h.cache->store(0x60, 1, &b); // second partial merge, same unit
    CPPC_ASSERT_TRUE(s->invariantHolds());
    h.cache->storeWord(0x60 + kConflict, 0x3333333333333333ull);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    h.cache->flushAll();
    CPPC_ASSERT_TRUE(s->invariantHolds());
    expectAllRegistersClear(h);
}

TEST_P(XorFlushRegression, PartialLineDirtyEviction)
{
    // Dirty exactly one unit of a four-unit line, then evict: the
    // eviction's dirty mask is mixed, and only the dirty unit may be
    // XORed into R2.
    Harness h(smallGeometry(), makeCppc(GetParam()));
    CppcScheme *s = scheme(h);
    const CacheGeometry g = smallGeometry();
    const Addr kLine = 3 * g.line_bytes;

    h.cache->loadWord(kLine); // fill the line clean
    h.cache->storeWord(kLine + 2 * g.unit_bytes, 0xdeadbeefcafef00dull);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    h.cache->storeWord(kLine + g.size_bytes, 0x4444444444444444ull);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    h.cache->flushAll();
    CPPC_ASSERT_TRUE(s->invariantHolds());
    expectAllRegistersClear(h);
}

TEST_P(XorFlushRegression, DowngradeRemovesDirtyWords)
{
    // A coherence downgrade writes dirty units back while the data
    // stays resident: the onClean path must fold each cleaned word
    // into R2 exactly once.
    Harness h(smallGeometry(), makeCppc(GetParam()));
    CppcScheme *s = scheme(h);
    const CacheGeometry g = smallGeometry();

    for (unsigned u = 0; u < g.unitsPerLine(); ++u)
        h.cache->storeWord(u * g.unit_bytes, 0x1000 + u);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    CPPC_ASSERT_TRUE(h.cache->downgradeLine(0x0));
    CPPC_ASSERT_TRUE(s->invariantHolds());
    expectAllRegistersClear(h);
    // Downgraded data is still resident and loadable.
    CPPC_ASSERT_EQ(h.cache->loadWord(0x0), 0x1000u);
}

TEST_P(XorFlushRegression, ScrubThenFlushOrderings)
{
    Harness h(smallGeometry(), makeCppc(GetParam()));
    CppcScheme *s = scheme(h);
    const CacheGeometry g = smallGeometry();

    for (unsigned i = 0; i < 16; ++i)
        h.cache->storeWord(i * g.line_bytes, 0xbeef0000 + i);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    while (h.cache->scrubDirtyLines(3) > 0)
        CPPC_ASSERT_TRUE(s->invariantHolds());
    CPPC_ASSERT_EQ(h.cache->dirtyUnitCount(), 0u);
    expectAllRegistersClear(h);
    h.cache->flushAll();
    CPPC_ASSERT_TRUE(s->invariantHolds());
    expectAllRegistersClear(h);
}

TEST_P(XorFlushRegression, InterleavedEvictRefillOrderings)
{
    // Ping-pong two conflicting dirty lines so each eviction's R2
    // update races a refill's R1 updates in program order, then flush.
    Harness h(smallGeometry(), makeCppc(GetParam()));
    CppcScheme *s = scheme(h);
    const Addr kConflict = smallGeometry().size_bytes;

    for (int round = 0; round < 6; ++round) {
        Addr a = (round & 1) ? 0x80 + kConflict : 0x80;
        h.cache->storeWord(a, 0x5000 + round);
        CPPC_ASSERT_TRUE(s->invariantHolds());
    }
    CPPC_ASSERT_EQ(h.cache->loadWord(0x80 + kConflict), 0x5005u);
    CPPC_ASSERT_TRUE(s->invariantHolds());
    h.cache->flushAll();
    CPPC_ASSERT_TRUE(s->invariantHolds());
    expectAllRegistersClear(h);
}

TEST_P(XorFlushRegression, RandomizedChurnKeepsInvariant)
{
    constexpr uint64_t kSeed = 20260805;
    Rng rng(kSeed);
    ScopedSeed scoped(kSeed);

    Harness h(smallGeometry(), makeCppc(GetParam()));
    CppcScheme *s = scheme(h);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.nextBelow(512) * 8; // 4x the cache in units
        double r = rng.nextDouble();
        if (r < 0.5) {
            uint64_t v = rng.next();
            golden[a] = v;
            h.cache->storeWord(a, v);
        } else if (r < 0.9) {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            CPPC_ASSERT_EQ(h.cache->loadWord(a), expect);
        } else if (r < 0.95) {
            h.cache->downgradeLine(a);
        } else {
            h.cache->flushAll();
        }
        if (i % 64 == 0)
            CPPC_ASSERT_TRUE(s->invariantHolds());
    }
    h.cache->flushAll();
    CPPC_ASSERT_TRUE(s->invariantHolds());
    expectAllRegistersClear(h);
    for (const auto &[a, v] : golden) {
        uint8_t buf[8];
        h.mem.peek(a, buf, 8);
        uint64_t got;
        std::memcpy(&got, buf, 8);
        CPPC_ASSERT_EQ(got, v);
    }
}

INSTANTIATE_TEST_SUITE_P(Pairs, XorFlushRegression,
                         ::testing::Values(1u, 2u, 8u),
                         [](const auto &info) {
                             return "p" + std::to_string(info.param);
                         });

} // namespace
} // namespace cppc
