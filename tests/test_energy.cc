#include <gtest/gtest.h>

#include "energy/accountant.hh"
#include "util/logging.hh"
#include "energy/cacti_model.hh"
#include "protection/parity.hh"
#include "protection/secded.hh"
#include "protection/two_d_parity.hh"
#include "sim/paper_config.hh"
#include "test_helpers.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

TEST(Cacti, CalibrationPoints)
{
    // The two CACTI numbers the paper quotes at 90 nm.
    CactiModel e(PaperConfig::l1dGeometry(), 90.0);
    EXPECT_NEAR(e.accessEnergyPj(), 240.0, 1e-9);

    CacheGeometry dm8k;
    dm8k.size_bytes = 8 * 1024;
    dm8k.assoc = 1;
    dm8k.line_bytes = 32;
    dm8k.unit_bytes = 8;
    CactiModel t(dm8k, 90.0);
    EXPECT_NEAR(t.accessTimeNs(), 0.78, 1e-9);
}

TEST(Cacti, MonotoneInSize)
{
    double prev_e = 0, prev_t = 0;
    for (uint64_t kb : {8ull, 32ull, 128ull, 1024ull}) {
        CacheGeometry g;
        g.size_bytes = kb * 1024;
        g.assoc = 2;
        g.line_bytes = 32;
        g.unit_bytes = 8;
        CactiModel m(g, 32.0);
        EXPECT_GT(m.accessEnergyPj(), prev_e);
        EXPECT_GT(m.accessTimeNs(), prev_t);
        EXPECT_GT(m.areaMm2(), 0.0);
        prev_e = m.accessEnergyPj();
        prev_t = m.accessTimeNs();
    }
}

TEST(Cacti, TechnologyScaling)
{
    CactiModel at90(PaperConfig::l1dGeometry(), 90.0);
    CactiModel at32(PaperConfig::l1dGeometry(), 32.0);
    // Quadratic energy scaling, linear delay scaling.
    EXPECT_NEAR(at32.accessEnergyPj() / at90.accessEnergyPj(),
                (32.0 / 90.0) * (32.0 / 90.0), 1e-9);
    EXPECT_NEAR(at32.accessTimeNs() / at90.accessTimeNs(), 32.0 / 90.0,
                1e-9);
}

TEST(Cacti, EffectiveEnergyFactors)
{
    CactiModel m(PaperConfig::l1dGeometry(), 32.0);
    double base = m.accessEnergyPj();
    // No overheads: identity.
    EXPECT_NEAR(m.effectiveAccessEnergyPj(0, 1000, 1.0), base, 1e-9);
    // 12.5% code overhead.
    EXPECT_NEAR(m.effectiveAccessEnergyPj(8, 64, 1.0), base * 1.125,
                1e-9);
    // 8-way interleaving multiplies the bitline share.
    double ilv = m.effectiveAccessEnergyPj(0, 1000, 8.0) / base;
    EXPECT_NEAR(ilv, 1.0 + 7.0 * CactiModel::kBitlineFraction, 1e-9);
}

TEST(Cacti, RejectsBadFeatureSize)
{
    EXPECT_THROW(CactiModel(PaperConfig::l1dGeometry(), 0.0), FatalError);
}

TEST(Accountant, ChargesHitsOnly)
{
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    // 1 write miss + 2 read hits + 1 write hit.
    h.cache->storeWord(0x0, 1);
    h.cache->loadWord(0x0);
    h.cache->loadWord(0x8);
    h.cache->storeWord(0x8, 2);

    CactiModel m(smallGeometry(), 32.0);
    EnergyBreakdown b = EnergyAccountant(m).compute(*h.cache);
    EXPECT_EQ(b.demand_ops, 3u); // the miss is not charged
    EXPECT_EQ(b.rbw_word_ops, 0u);
    EXPECT_GT(b.demand_pj, 0.0);
}

TEST(Accountant, CppcChargesRbwOnDirtyOverwrites)
{
    Harness h(smallGeometry(),
              makeScheme(SchemeKind::Cppc));
    h.cache->storeWord(0x0, 1);
    h.cache->storeWord(0x0, 2); // dirty overwrite -> RBW
    h.cache->storeWord(0x0, 3); // another
    CactiModel m(smallGeometry(), 32.0);
    EnergyBreakdown b = EnergyAccountant(m).compute(*h.cache);
    EXPECT_EQ(b.rbw_word_ops, 2u);
    EXPECT_NEAR(b.rbw_word_pj / b.demand_pj,
                2.0 / static_cast<double>(b.demand_ops), 1e-9);
}

TEST(Accountant, TwoDChargesLineReads)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<TwoDParityScheme>(8));
    h.cache->loadWord(0x0);                // cold fill: line RBW
    h.cache->loadWord(0x0 + g.size_bytes); // clean eviction fill: RBW
    CactiModel m(g, 32.0);
    EnergyBreakdown b = EnergyAccountant(m).compute(*h.cache);
    EXPECT_EQ(b.rbw_line_ops, 2u);
    // A line read costs unitsPerLine() unit accesses.
    EXPECT_NEAR(b.rbw_line_pj,
                2.0 * g.unitsPerLine() * m.effectiveAccessEnergyPj(
                    static_cast<double>(
                        h.cache->scheme()->codeBitsTotal()),
                    static_cast<double>(g.dataBits()), 1.0),
                1e-6);
}

TEST(Accountant, InterleavedSecdedCostsMorePerAccess)
{
    Harness plain(smallGeometry(), std::make_unique<SecdedScheme>(1));
    Harness ilv(smallGeometry(), std::make_unique<SecdedScheme>(8));
    plain.cache->storeWord(0x0, 1);
    plain.cache->loadWord(0x0);
    ilv.cache->storeWord(0x0, 1);
    ilv.cache->loadWord(0x0);
    CactiModel m(smallGeometry(), 32.0);
    EnergyBreakdown bp = EnergyAccountant(m).compute(*plain.cache);
    EnergyBreakdown bi = EnergyAccountant(m).compute(*ilv.cache);
    EXPECT_GT(bi.total(), bp.total());
    EXPECT_NEAR(bi.total() / bp.total(),
                1.0 + 7.0 * CactiModel::kBitlineFraction, 1e-9);
}

TEST(Accountant, UnprotectedCacheHasNoOverheads)
{
    Harness h(smallGeometry(), nullptr);
    h.cache->storeWord(0x0, 1);
    h.cache->loadWord(0x0);
    CactiModel m(smallGeometry(), 32.0);
    EnergyBreakdown b = EnergyAccountant(m).compute(*h.cache);
    EXPECT_EQ(b.rbw_word_ops, 0u);
    EXPECT_EQ(b.rbw_line_ops, 0u);
    EXPECT_NEAR(b.demand_pj,
                static_cast<double>(b.demand_ops) * m.accessEnergyPj(),
                1e-9);
}

} // namespace
} // namespace cppc
