#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "coherence/multicore.hh"
#include "cppc/cppc_scheme.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

CppcScheme *
scheme(WriteBackCache &c)
{
    return static_cast<CppcScheme *>(c.scheme());
}

TEST(Coherence, WriteThenRemoteRead)
{
    MulticoreSystem sys(2, SchemeKind::Cppc);
    sys.bus->storeWord(0, 0x1000, 0xAA55);
    // Core 1 reads the line core 0 holds dirty: downgrade + fetch.
    EXPECT_EQ(sys.bus->loadWord(1, 0x1000), 0xAA55ull);
    EXPECT_EQ(sys.bus->stats().remote_downgrades, 1u);
    // Core 0's copy is now clean but still resident.
    EXPECT_TRUE(sys.l1s[0]->hasLine(0x1000));
    EXPECT_FALSE(sys.l1s[0]->lineDirty(0x1000));
}

TEST(Coherence, WriteInvalidatesPeers)
{
    MulticoreSystem sys(2, SchemeKind::Cppc);
    sys.bus->storeWord(0, 0x2000, 1);
    sys.bus->loadWord(1, 0x2000); // both share it now
    sys.bus->storeWord(1, 0x2000, 2);
    EXPECT_FALSE(sys.l1s[0]->hasLine(0x2000));
    EXPECT_EQ(sys.bus->loadWord(0, 0x2000), 2ull);
    EXPECT_GE(sys.bus->stats().remote_invalidations, 1u);
}

TEST(Coherence, PingPongKeepsSingleWriterValue)
{
    MulticoreSystem sys(2, SchemeKind::Parity1D);
    for (uint64_t i = 0; i < 200; ++i) {
        unsigned core = i % 2;
        sys.bus->storeWord(core, 0x3000, i);
        EXPECT_EQ(sys.bus->loadWord(1 - core, 0x3000), i);
    }
}

TEST(Coherence, InvalidationFeedsR2AndInvariantHolds)
{
    MulticoreSystem sys(2, SchemeKind::Cppc);
    sys.bus->storeWord(0, 0x4000, 0x1234);
    ASSERT_TRUE(scheme(*sys.l1s[0])->invariantHolds());
    // Remote write: core 0's dirty word is invalidated -> into R2.
    sys.bus->storeWord(1, 0x4000, 0x5678);
    EXPECT_TRUE(scheme(*sys.l1s[0])->invariantHolds());
    EXPECT_TRUE(scheme(*sys.l1s[1])->invariantHolds());
    EXPECT_TRUE(scheme(*sys.l2)->invariantHolds());
}

TEST(Coherence, DowngradeFeedsR2AndInvariantHolds)
{
    MulticoreSystem sys(2, SchemeKind::Cppc);
    sys.bus->storeWord(0, 0x5000, 0x9999);
    sys.bus->loadWord(1, 0x5000); // downgrade core 0's dirty copy
    EXPECT_TRUE(scheme(*sys.l1s[0])->invariantHolds());
    // The word is now clean: correctable by refetch.
    Row r = 0;
    bool found = false;
    sys.l1s[0]->forEachValidRow([&](Row row, bool) {
        if (!found && sys.l1s[0]->rowAddr(row) == 0x5000) {
            r = row;
            found = true;
        }
    });
    ASSERT_TRUE(found);
    sys.l1s[0]->corruptBit(r, 7);
    auto out = sys.bus->load(0, 0x5000, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(sys.bus->loadWord(0, 0x5000), 0x9999ull);
}

class CoherenceRandom : public ::testing::TestWithParam<SchemeKind>
{
};

TEST_P(CoherenceRandom, MatchesGoldenMemoryModel)
{
    // Random 4-core traffic over a shared footprint vs a sequential
    // golden map: every load must observe the latest store.
    MulticoreSystem sys(4, GetParam());
    Rng rng(2024);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 20000; ++i) {
        unsigned core = static_cast<unsigned>(rng.nextBelow(4));
        Addr a = rng.nextBelow(4096) * 8; // 32 KiB shared region
        if (rng.chance(0.45)) {
            uint64_t v = rng.next();
            golden[a] = v;
            sys.bus->storeWord(core, a, v);
        } else {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            ASSERT_EQ(sys.bus->loadWord(core, a), expect)
                << "iter " << i << " core " << core << " addr " << a;
        }
    }
    // Flush everything; memory must equal the golden image.
    for (auto &l1 : sys.l1s)
        l1->flushAll();
    sys.l2->flushAll();
    for (const auto &[a, v] : golden) {
        uint8_t buf[8];
        sys.mem.peek(a, buf, 8);
        uint64_t got;
        std::memcpy(&got, buf, 8);
        ASSERT_EQ(got, v);
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, CoherenceRandom,
                         ::testing::Values(SchemeKind::Parity1D,
                                           SchemeKind::Cppc,
                                           SchemeKind::Secded,
                                           SchemeKind::Parity2D),
                         [](const auto &info) {
                             return schemeKindName(info.param);
                         });

TEST(Coherence, CppcInvariantUnderHeavySharing)
{
    MulticoreSystem sys(4, SchemeKind::Cppc);
    Rng rng(31337);
    for (int i = 0; i < 30000; ++i) {
        unsigned core = static_cast<unsigned>(rng.nextBelow(4));
        Addr a = rng.nextBelow(2048) * 8;
        if (rng.chance(0.5))
            sys.bus->storeWord(core, a, rng.next());
        else
            sys.bus->loadWord(core, a);
    }
    for (auto &l1 : sys.l1s)
        EXPECT_TRUE(scheme(*l1)->invariantHolds());
    EXPECT_TRUE(scheme(*sys.l2)->invariantHolds());
    for (auto &l1 : sys.l1s)
        EXPECT_EQ(l1->scheme()->stats().detections, 0u);
}

TEST(Coherence, FaultCorrectedBeforeInvalidationPropagates)
{
    // A fault in a dirty word that is about to be invalidated by a
    // remote write: the write-back verification catches and corrects
    // it, so the remote core sees good data.
    MulticoreSystem sys(2, SchemeKind::Cppc);
    sys.bus->storeWord(0, 0x6000, 0xBEEF);
    sys.bus->storeWord(0, 0x6008, 0xCAFE);
    Row r = 0;
    bool found = false;
    sys.l1s[0]->forEachValidRow([&](Row row, bool dirty) {
        if (!found && dirty && sys.l1s[0]->rowAddr(row) == 0x6000) {
            r = row;
            found = true;
        }
    });
    ASSERT_TRUE(found);
    sys.l1s[0]->corruptBit(r, 11);
    sys.bus->storeWord(1, 0x6008, 0xD00D); // invalidates core 0's line
    EXPECT_EQ(sys.bus->loadWord(1, 0x6000), 0xBEEFull);
    EXPECT_EQ(sys.l1s[0]->scheme()->stats().corrected_dirty, 1u);
}

TEST(Coherence, InvalidationsReduceRbwTraffic)
{
    // The Section 7 hypothesis: under write-invalidate sharing, dirty
    // words often leave a cache before their owner overwrites them, so
    // CPPC's per-store RBW rate drops versus a single core running the
    // same store stream.
    auto rbw_per_store = [&](unsigned cores) {
        MulticoreSystem sys(cores, SchemeKind::Cppc);
        Rng rng(777);
        uint64_t stores = 0;
        for (int i = 0; i < 40000; ++i) {
            unsigned core =
                static_cast<unsigned>(rng.nextBelow(cores));
            Addr a = rng.nextBelow(512) * 8; // hot shared 4 KiB
            if (rng.chance(0.6)) {
                sys.bus->storeWord(core, a, rng.next());
                ++stores;
            } else {
                sys.bus->loadWord(core, a);
            }
        }
        uint64_t rbw = 0;
        for (auto &l1 : sys.l1s)
            rbw += l1->scheme()->stats().rbw_words;
        return static_cast<double>(rbw) / static_cast<double>(stores);
    };
    double solo = rbw_per_store(1);
    double quad = rbw_per_store(4);
    EXPECT_LT(quad, solo);
}

TEST(Coherence, RejectsEmptyBus)
{
    EXPECT_THROW(SnoopBus({}), FatalError);
}

} // namespace
} // namespace cppc
