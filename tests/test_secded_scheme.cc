#include <gtest/gtest.h>

#include "protection/secded.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

Harness
makeHarness(unsigned interleave = 8)
{
    return Harness(smallGeometry(),
                   std::make_unique<SecdedScheme>(interleave));
}

TEST(Secded, CleanTrafficNeverDetects)
{
    Harness h = makeHarness();
    Rng rng(51);
    for (int i = 0; i < 3000; ++i) {
        Addr a = rng.nextBelow(512) * 8;
        if (rng.chance(0.4))
            h.cache->storeWord(a, rng.next());
        else
            h.cache->loadWord(a);
    }
    EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
}

TEST(Secded, CorrectsSingleBitInDirtyWord)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0xfeedface);
    h.cache->corruptBit(0, 29);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0xfeedfaceull);
    EXPECT_EQ(h.cache->scheme()->stats().corrected_dirty, 1u);
}

TEST(Secded, CorrectsSingleBitInCleanWordInPlace)
{
    Harness h = makeHarness();
    uint8_t seed[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 50);
    h.cache->load(0x0, 8, nullptr);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
    EXPECT_EQ(h.cache->scheme()->stats().corrected_clean, 1u);
    EXPECT_EQ(h.mem.reads(), 1u); // corrected without a refetch
}

TEST(Secded, EverySingleBitPositionCorrectable)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0xa5a5a5a5a5a5a5a5ull);
    for (unsigned bit = 0; bit < 64; ++bit) {
        h.cache->corruptBit(0, bit);
        auto out = h.cache->load(0x0, 8, nullptr);
        ASSERT_TRUE(out.fault_detected) << "bit " << bit;
        ASSERT_FALSE(out.due) << "bit " << bit;
        ASSERT_EQ(h.cache->loadWord(0x0), 0xa5a5a5a5a5a5a5a5ull);
    }
}

TEST(Secded, DoubleBitInDirtyWordIsDue)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0x1111);
    h.cache->corruptBit(0, 3);
    h.cache->corruptBit(0, 40);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_TRUE(out.due);
    EXPECT_EQ(h.cache->scheme()->stats().due, 1u);
}

TEST(Secded, DoubleBitInCleanWordRefetched)
{
    Harness h = makeHarness();
    uint8_t seed[8] = {0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 0);
    h.cache->corruptBit(0, 1);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
    EXPECT_EQ(h.cache->scheme()->stats().refetched_clean, 1u);
}

TEST(Secded, OverwriteRefreshesCode)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 1);
    h.cache->storeWord(0x0, 2);
    h.cache->storeWord(0x0, 3);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.fault_detected);
}

TEST(Secded, PartialStoreIsReadModifyWrite)
{
    Harness h = makeHarness();
    uint8_t b = 0x9d;
    auto out = h.cache->store(0x5, 1, &b);
    EXPECT_TRUE(out.rbw);
    EXPECT_EQ(h.cache->scheme()->stats().rbw_words, 1u);
    // And the code still matches the merged word.
    auto out2 = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out2.fault_detected);
}

TEST(Secded, InterleaveFactorReporting)
{
    Harness h8 = makeHarness(8);
    EXPECT_EQ(h8.cache->scheme()->bitlineOverheadFactor(), 8.0);
    Harness h1 = makeHarness(1);
    EXPECT_EQ(h1.cache->scheme()->bitlineOverheadFactor(), 1.0);
}

TEST(Secded, AreaOverheadMatchesPaper)
{
    // 8 code bits per 64-bit word = 12.5%.
    Harness h = makeHarness();
    uint64_t code_bits = h.cache->scheme()->codeBitsTotal();
    uint64_t data_bits = h.cache->geometry().dataBits();
    EXPECT_DOUBLE_EQ(static_cast<double>(code_bits) /
                         static_cast<double>(data_bits),
                     0.125);
}

TEST(Secded, L2BlockGranularity)
{
    CacheGeometry g = smallGeometry(32); // 32-byte protection units
    Harness h(g, std::make_unique<SecdedScheme>(8));
    uint8_t block[32];
    for (unsigned i = 0; i < 32; ++i)
        block[i] = static_cast<uint8_t>(i);
    h.cache->store(0x0, 32, block);
    h.cache->corruptBit(0, 200);
    auto out = h.cache->load(0x0, 32, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    uint8_t got[32];
    h.cache->load(0x0, 32, got);
    EXPECT_EQ(std::memcmp(block, got, 32), 0);
}

} // namespace
} // namespace cppc
