#include <gtest/gtest.h>

#include "cppc/xor_registers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

TEST(XorRegisters, StartZero)
{
    XorRegisterFile f(8, 2, 4);
    EXPECT_EQ(f.numDomains(), 2u);
    EXPECT_EQ(f.pairsPerDomain(), 4u);
    for (unsigned d = 0; d < 2; ++d) {
        for (unsigned p = 0; p < 4; ++p) {
            EXPECT_TRUE(f.r1(d, p).isZero());
            EXPECT_TRUE(f.r2(d, p).isZero());
            EXPECT_TRUE(f.dirtyXor(d, p).isZero());
        }
    }
}

TEST(XorRegisters, StoreRemovalCancellation)
{
    // Store a word, then remove it: R1 ^ R2 returns to zero — the core
    // "XOR of resident dirty data" property.
    XorRegisterFile f(8, 1, 1);
    Rng rng(77);
    WideWord w = WideWord::random(rng, 8);
    f.accumulateStore(0, 0, w);
    EXPECT_EQ(f.dirtyXor(0, 0), w);
    f.accumulateRemoval(0, 0, w);
    EXPECT_TRUE(f.dirtyXor(0, 0).isZero());
    EXPECT_FALSE(f.r1(0, 0).isZero()); // history remains in R1/R2
    EXPECT_EQ(f.r1(0, 0), f.r2(0, 0));
}

TEST(XorRegisters, TracksMultisetOfResidentWords)
{
    XorRegisterFile f(8, 1, 1);
    Rng rng(79);
    WideWord a = WideWord::random(rng, 8);
    WideWord b = WideWord::random(rng, 8);
    WideWord c = WideWord::random(rng, 8);
    f.accumulateStore(0, 0, a);
    f.accumulateStore(0, 0, b);
    f.accumulateStore(0, 0, c);
    f.accumulateRemoval(0, 0, b);
    EXPECT_EQ(f.dirtyXor(0, 0), a ^ c);
}

TEST(XorRegisters, PairsIndependent)
{
    XorRegisterFile f(8, 2, 2);
    WideWord w = WideWord::fromUint64(0x1234);
    f.accumulateStore(1, 0, w);
    EXPECT_TRUE(f.dirtyXor(0, 0).isZero());
    EXPECT_TRUE(f.dirtyXor(0, 1).isZero());
    EXPECT_TRUE(f.dirtyXor(1, 1).isZero());
    EXPECT_EQ(f.dirtyXor(1, 0), w);
}

TEST(XorRegisters, ParityMaintainedThroughUpdates)
{
    XorRegisterFile f(8, 1, 1);
    Rng rng(83);
    for (int i = 0; i < 200; ++i) {
        if (rng.chance(0.5))
            f.accumulateStore(0, 0, WideWord::random(rng, 8));
        else
            f.accumulateRemoval(0, 0, WideWord::random(rng, 8));
        ASSERT_TRUE(f.allParityOk());
    }
}

TEST(XorRegisters, InjectedFaultBreaksParity)
{
    XorRegisterFile f(8, 1, 2);
    f.accumulateStore(0, 1, WideWord::fromUint64(0xff));
    EXPECT_TRUE(f.allParityOk());
    f.injectFault(0, 1, XorRegisterFile::Which::R1, 13);
    EXPECT_FALSE(f.allParityOk());
    EXPECT_FALSE(f.parityOk(0, 1, XorRegisterFile::Which::R1));
    EXPECT_TRUE(f.parityOk(0, 1, XorRegisterFile::Which::R2));
    EXPECT_TRUE(f.parityOk(0, 0, XorRegisterFile::Which::R1));
}

TEST(XorRegisters, SetRepairsParity)
{
    XorRegisterFile f(8, 1, 1);
    f.injectFault(0, 0, XorRegisterFile::Which::R2, 5);
    EXPECT_FALSE(f.allParityOk());
    f.set(0, 0, XorRegisterFile::Which::R2, WideWord(8));
    EXPECT_TRUE(f.allParityOk());
    EXPECT_TRUE(f.r2(0, 0).isZero());
}

TEST(XorRegisters, WideUnits)
{
    // L2 CPPC: registers as wide as an L1 block (Section 3.5).
    XorRegisterFile f(32, 1, 1);
    Rng rng(89);
    WideWord w = WideWord::random(rng, 32);
    f.accumulateStore(0, 0, w);
    EXPECT_EQ(f.dirtyXor(0, 0), w);
    EXPECT_EQ(f.dirtyXor(0, 0).sizeBytes(), 32u);
}

TEST(XorRegisters, StorageBits)
{
    // 1 domain x 1 pair x 2 registers x (64 data + 1 parity).
    XorRegisterFile f(8, 1, 1);
    EXPECT_EQ(f.storageBits(), 2u * 65);
    // 2 domains x 4 pairs of 256-bit registers.
    XorRegisterFile g(32, 2, 4);
    EXPECT_EQ(g.storageBits(), 16u * 257);
}

TEST(XorRegisters, Reset)
{
    XorRegisterFile f(8, 1, 1);
    f.accumulateStore(0, 0, WideWord::fromUint64(0xdead));
    f.reset();
    EXPECT_TRUE(f.r1(0, 0).isZero());
    EXPECT_TRUE(f.allParityOk());
}

} // namespace
} // namespace cppc
