#include <gtest/gtest.h>

#include "cache/dirty_profiler.hh"
#include "protection/parity.hh"
#include "test_helpers.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

TEST(DirtyProfiler, TavgIntervalArithmetic)
{
    DirtyProfiler p;
    p.onAccess(0x100, false, 10);  // first touch: no interval
    p.onAccess(0x100, true, 110);  // dirty, 100 cycles later
    p.onAccess(0x100, true, 160);  // dirty, 50 cycles later
    p.onAccess(0x100, false, 400); // clean access: no sample
    EXPECT_EQ(p.tavgSamples(), 2u);
    EXPECT_DOUBLE_EQ(p.tavgCycles(), 75.0);
}

TEST(DirtyProfiler, AddressesIndependent)
{
    DirtyProfiler p;
    p.onAccess(0x0, true, 0);
    p.onAccess(0x8, true, 5);
    p.onAccess(0x0, true, 100);
    EXPECT_EQ(p.tavgSamples(), 1u);
    EXPECT_DOUBLE_EQ(p.tavgCycles(), 100.0);
}

TEST(DirtyProfiler, OccupancySampling)
{
    DirtyProfiler p;
    p.sampleOccupancy(0.1);
    p.sampleOccupancy(0.3);
    EXPECT_DOUBLE_EQ(p.avgDirtyFraction(), 0.2);
}

TEST(DirtyProfiler, CacheHookDrivesProfiler)
{
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    DirtyProfiler p;
    h.cache->attachProfiler(&p);

    h.cache->setNow(0);
    h.cache->storeWord(0x0, 1); // makes the word dirty (was clean)
    h.cache->setNow(100);
    h.cache->loadWord(0x0); // access to a dirty word: interval 100
    h.cache->setNow(250);
    h.cache->loadWord(0x0); // interval 150
    h.cache->attachProfiler(nullptr);

    EXPECT_EQ(p.tavgSamples(), 2u);
    EXPECT_DOUBLE_EQ(p.tavgCycles(), 125.0);
}

TEST(DirtyProfiler, DetachedProfilerUntouched)
{
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    DirtyProfiler p;
    h.cache->attachProfiler(&p);
    h.cache->attachProfiler(nullptr);
    h.cache->storeWord(0x0, 1);
    h.cache->loadWord(0x0);
    EXPECT_EQ(p.tavgSamples(), 0u);
}

} // namespace
} // namespace cppc
