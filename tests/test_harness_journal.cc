/**
 * @file
 * Checkpoint-journal unit tests: durable append, CRC-checked parse,
 * torn-tail tolerance, config-hash binding and the payload codecs'
 * bit-exact round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>

#include <unistd.h>

#include "harness/codec.hh"
#include "harness/journal.hh"
#include "sim/sweep.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

/** A unique temp path, deleted on scope exit. */
class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_(testing::TempDir() + "cppc_journal_" + tag + "_" +
                std::to_string(::getpid()))
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

TEST(Journal, FreshWritesHeaderImmediately)
{
    TempFile tmp("fresh");
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh);
    std::string contents = slurp(tmp.path());
    EXPECT_NE(contents.find("cppc-journal v1 sweep"), std::string::npos);
    EXPECT_NE(contents.find("config cfg=a"), std::string::npos);
    EXPECT_TRUE(j.resumed().empty());
}

TEST(Journal, FreshRefusesExistingFile)
{
    TempFile tmp("refuse");
    { Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh); }
    EXPECT_THROW(
        Journal(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh),
        FatalError);
}

TEST(Journal, AppendThenResumeRoundTrips)
{
    TempFile tmp("roundtrip");
    {
        Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh);
        ASSERT_TRUE(j.append({"cell1", CellStatus::Ok, 1, "payload1"}));
        ASSERT_TRUE(j.append({"cell2", CellStatus::Failed, 3, ""}));
        ASSERT_TRUE(j.append({"cell3", CellStatus::TimedOut, 2, "partial"}));
    }
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    ASSERT_EQ(j.resumed().size(), 3u);
    const JournalRecord &c1 = j.resumed().at("cell1");
    EXPECT_EQ(c1.status, CellStatus::Ok);
    EXPECT_EQ(c1.attempts, 1u);
    EXPECT_EQ(c1.payload, "payload1");
    EXPECT_EQ(j.resumed().at("cell2").status, CellStatus::Failed);
    EXPECT_EQ(j.resumed().at("cell2").payload, "");
    EXPECT_EQ(j.resumed().at("cell3").attempts, 2u);
}

TEST(Journal, LastRecordPerKeyWins)
{
    TempFile tmp("lastwins");
    {
        Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh);
        ASSERT_TRUE(j.append({"cell", CellStatus::Failed, 1, ""}));
        ASSERT_TRUE(j.append({"cell", CellStatus::Ok, 2, "fixed"}));
    }
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    EXPECT_EQ(j.resumed().at("cell").status, CellStatus::Ok);
    EXPECT_EQ(j.resumed().at("cell").payload, "fixed");
}

TEST(Journal, ResumeRejectsMismatchedConfig)
{
    TempFile tmp("mismatch");
    { Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh); }
    try {
        Journal j(tmp.path(), "sweep", "cfg=b", Journal::Mode::Resume);
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        // The error must name BOTH configurations.
        EXPECT_NE(std::string(e.what()).find("cfg=a"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("cfg=b"),
                  std::string::npos);
    }
}

TEST(Journal, ResumeRejectsMismatchedKind)
{
    TempFile tmp("kind");
    { Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh); }
    EXPECT_THROW(
        Journal(tmp.path(), "campaign", "cfg=a", Journal::Mode::Resume),
        FatalError);
}

TEST(Journal, TornTailIsDroppedNotFatal)
{
    TempFile tmp("torn");
    {
        Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh);
        ASSERT_TRUE(j.append({"good", CellStatus::Ok, 1, "p"}));
    }
    // Simulate a torn write: append half a record with no valid CRC.
    {
        std::ofstream os(tmp.path(), std::ios::app);
        os << "cell half-written ok 1 xx";
    }
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    EXPECT_EQ(j.resumed().size(), 1u);
    EXPECT_TRUE(j.resumed().count("good"));
    // The reopened journal normalized the file: resuming again is
    // clean and the torn line is gone for good.
    EXPECT_EQ(slurp(tmp.path()).find("half-written"), std::string::npos);
}

TEST(Journal, CorruptedRecordTruncatesFromThere)
{
    TempFile tmp("corrupt");
    {
        Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh);
        ASSERT_TRUE(j.append({"a", CellStatus::Ok, 1, "pa"}));
        ASSERT_TRUE(j.append({"b", CellStatus::Ok, 1, "pb"}));
        ASSERT_TRUE(j.append({"c", CellStatus::Ok, 1, "pc"}));
    }
    // Flip a byte inside record "b": its CRC no longer matches, so b
    // AND everything after it are dropped (a corrupt middle means the
    // tail's provenance is unknowable).
    std::string contents = slurp(tmp.path());
    size_t at = contents.find(" pb ");
    ASSERT_NE(at, std::string::npos);
    contents[at + 1] = 'X';
    {
        std::ofstream os(tmp.path(), std::ios::trunc);
        os << contents;
    }
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    EXPECT_EQ(j.resumed().size(), 1u);
    EXPECT_TRUE(j.resumed().count("a"));
}

TEST(Journal, TornCrcFieldMidByteIsDroppedNotFatal)
{
    TempFile tmp("torncrc");
    {
        Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh);
        ASSERT_TRUE(j.append({"good", CellStatus::Ok, 1, "p"}));
        ASSERT_TRUE(j.append({"victim", CellStatus::Ok, 1, "q"}));
    }
    // Tear the LAST line inside its own CRC field: keep "... crc=" and
    // the first three hex digits, cut mid-way through the fourth byte.
    // The line body is intact — only the seal is short — and the
    // reader must treat that as a torn tail, not parse garbage or die.
    std::string contents = slurp(tmp.path());
    ASSERT_EQ(contents.back(), '\n');
    contents.pop_back();
    size_t at = contents.rfind(" crc=");
    ASSERT_NE(at, std::string::npos);
    contents.resize(at + 5 + 3); // 3 of 8 hex digits survive
    {
        std::ofstream os(tmp.path(), std::ios::trunc);
        os << contents;
    }
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    EXPECT_EQ(j.resumed().size(), 1u);
    EXPECT_TRUE(j.resumed().count("good"));
    EXPECT_FALSE(j.resumed().count("victim"));
    // And the normalized image no longer carries the torn line.
    EXPECT_EQ(slurp(tmp.path()).find("victim"), std::string::npos);
}

TEST(Journal, EmptyPayloadCellNormalizesOnResume)
{
    TempFile tmp("emptypayload");
    {
        Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Fresh);
        ASSERT_TRUE(j.append({"empty", CellStatus::Ok, 1, ""}));
    }
    // An empty payload is journaled as the placeholder token "-" (a
    // record always has five tokens); resume must map it back to the
    // empty string, not hand "-" to a payload codec.
    std::string contents = slurp(tmp.path());
    EXPECT_NE(contents.find("cell empty ok 1 -"), std::string::npos);
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    ASSERT_TRUE(j.resumed().count("empty"));
    EXPECT_EQ(j.resumed().at("empty").status, CellStatus::Ok);
    EXPECT_EQ(j.resumed().at("empty").payload, "");
    // Round-trip again: re-appending the resumed record reproduces the
    // same on-disk token, so the normalization is stable.
    ASSERT_TRUE(j.append(j.resumed().at("empty")));
    Journal k(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    EXPECT_EQ(k.resumed().at("empty").payload, "");
}

TEST(Journal, ResumeOnMissingFileStartsFresh)
{
    TempFile tmp("absent");
    Journal j(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    EXPECT_TRUE(j.resumed().empty());
    // And it is immediately durable/resumable.
    Journal k(tmp.path(), "sweep", "cfg=a", Journal::Mode::Resume);
    EXPECT_TRUE(k.resumed().empty());
}

TEST(JournalCodec, CellStatusNamesRoundTrip)
{
    for (CellStatus s :
         {CellStatus::Ok, CellStatus::Failed, CellStatus::TimedOut,
          CellStatus::Skipped})
        EXPECT_EQ(parseCellStatus(cellStatusName(s)), s);
    EXPECT_THROW(parseCellStatus("bogus"), FatalError);
}

TEST(JournalCodec, HexRoundTripsArbitraryBytes)
{
    std::string bytes;
    for (int i = 0; i < 256; ++i)
        bytes += static_cast<char>(i);
    EXPECT_EQ(hexDecode(hexEncode(bytes)), bytes);
    EXPECT_EQ(hexEncode(""), "");
    EXPECT_EQ(hexDecode(""), "");
    EXPECT_THROW(hexDecode("abc"), FatalError);  // odd length
    EXPECT_THROW(hexDecode("zz"), FatalError);   // not hex
}

TEST(JournalCodec, DoubleRoundTripIsBitExact)
{
    // Decimal formatting would lose bits on these; the codec must not.
    for (double v : {0.0, -0.0, 1.0 / 3.0, 6.02214076e23, 5e-324,
                     std::nan("0x5ca1ab1e"),
                     std::numeric_limits<double>::infinity()}) {
        double back = decodeDouble(encodeDouble(v));
        EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0)
            << "double " << v << " did not round-trip bit-exactly";
    }
}

TEST(JournalCodec, RunMetricsRoundTripsBitExactly)
{
    RunMetrics m;
    m.benchmark = "mcf";
    m.kind = SchemeKind::Cppc;
    m.core.instructions = 123456789;
    m.core.cycles = 987654321;
    m.core.loads = 1;
    m.core.stores = 2;
    m.core.load_stall_cycles = 3;
    m.core.port_conflict_cycles = 4;
    m.core.lsq_stall_cycles = 5;
    m.core.fetch_stall_cycles = 6;
    m.l1_energy.demand_pj = 1.0 / 7.0;
    m.l1_energy.rbw_word_pj = 2.0 / 7.0;
    m.l1_energy.rbw_line_pj = 3.0 / 7.0;
    m.l1_energy.demand_ops = 7;
    m.l1_energy.rbw_word_ops = 8;
    m.l1_energy.rbw_line_ops = 9;
    m.l2_energy.demand_pj = 4.0 / 7.0;
    m.l2_energy.demand_ops = 10;
    m.l1_miss_rate = 0.1234567890123456789;
    m.l2_miss_rate = 1e-300;
    m.stats_dump = "l1d.hits 42\nl1d.misses 7\n";
    m.l1_dirty_fraction = 0.16;
    m.l1_tavg_cycles = 1828.0;
    m.l2_dirty_fraction = 0.35;
    m.l2_tavg_cycles = 378997.0;

    std::string payload = encodeRunMetrics(m);
    // Journal payloads must be single whitespace-free tokens.
    EXPECT_EQ(payload.find(' '), std::string::npos);
    EXPECT_EQ(payload.find('\n'), std::string::npos);

    RunMetrics back = decodeRunMetrics(payload);
    EXPECT_TRUE(metricsIdentical(m, back));
    EXPECT_EQ(back.stats_dump, m.stats_dump);
}

TEST(JournalCodec, CampaignResultRoundTrips)
{
    CampaignResult r;
    r.injections = 10000;
    r.benign = 12;
    r.corrected = 9900;
    r.due = 80;
    r.sdc = 8;
    r.misrepair = 3;
    CampaignResult back = decodeCampaignResult(encodeCampaignResult(r));
    EXPECT_EQ(back.injections, r.injections);
    EXPECT_EQ(back.benign, r.benign);
    EXPECT_EQ(back.corrected, r.corrected);
    EXPECT_EQ(back.due, r.due);
    EXPECT_EQ(back.sdc, r.sdc);
    EXPECT_EQ(back.misrepair, r.misrepair);
}

TEST(JournalCodec, FuzzBatchRoundTrips)
{
    FuzzBatchResult r;
    r.seeds = 8;
    r.failures = 2;
    r.checks = 1600;
    r.strikes = 90;
    r.corrected = 70;
    r.refetched = 15;
    r.dues = 5;
    r.misrepairs = 4;
    r.first_fail_seed = 1003;
    r.first_violation = "strike on row 3 resolved silently\n(detail)";
    FuzzBatchResult back = decodeFuzzBatch(encodeFuzzBatch(r));
    EXPECT_TRUE(fuzzBatchesIdentical(r, back));
}

TEST(JournalCodec, WrongFieldCountIsFatal)
{
    EXPECT_THROW(decodeCampaignResult("1,2,3"), FatalError);
    EXPECT_THROW(decodeRunMetrics("deadbeef"), FatalError);
    EXPECT_THROW(decodeFuzzBatch("1,2"), FatalError);
}

} // namespace
} // namespace cppc
