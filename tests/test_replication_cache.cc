#include <gtest/gtest.h>

#include <map>

#include "protection/replication_cache.hh"
#include "test_helpers.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

ReplicationCacheScheme *
scheme(Harness &h)
{
    return static_cast<ReplicationCacheScheme *>(h.cache->scheme());
}

TEST(ReplCache, RecentDirtyWordRecoversFromReplica)
{
    Harness h(smallGeometry(),
              std::make_unique<ReplicationCacheScheme>(16));
    h.cache->storeWord(0x0, 0xCAFE);
    EXPECT_TRUE(scheme(h)->hasReplica(0));
    h.cache->corruptBit(0, 14);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0xCAFEull);
}

TEST(ReplCache, EvictedReplicaLeavesWordUnprotected)
{
    // Capacity 4: the fifth distinct store displaces the oldest
    // replica, exposing that dirty word — the low-locality hole.
    Harness h(smallGeometry(),
              std::make_unique<ReplicationCacheScheme>(4));
    for (unsigned i = 0; i < 5; ++i)
        h.cache->storeWord(i * 0x20, 100 + i);
    EXPECT_FALSE(scheme(h)->hasReplica(0)); // first store's replica gone
    EXPECT_EQ(scheme(h)->replicaEvictions(), 1u);
    h.cache->corruptBit(0, 3);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.due);
}

TEST(ReplCache, OverwriteRefreshesReplicaLru)
{
    Harness h(smallGeometry(),
              std::make_unique<ReplicationCacheScheme>(2));
    h.cache->storeWord(0x00, 1);
    h.cache->storeWord(0x20, 2);
    h.cache->storeWord(0x00, 3); // refresh word 0's recency
    h.cache->storeWord(0x40, 4); // evicts word 0x20's replica
    EXPECT_TRUE(scheme(h)->hasReplica(0));
    EXPECT_FALSE(scheme(h)->hasReplica(4 /* row of 0x20 */));
}

TEST(ReplCache, CleanFaultRefetches)
{
    Harness h(smallGeometry(),
              std::make_unique<ReplicationCacheScheme>(8));
    uint8_t seed[8] = {3, 1, 4, 1, 5, 9, 2, 6};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 40);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
}

TEST(ReplCache, WritebackDropsReplica)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<ReplicationCacheScheme>(16));
    h.cache->storeWord(0x0, 0x11);
    EXPECT_EQ(scheme(h)->occupancy(), 1u);
    h.cache->loadWord(0x0 + g.size_bytes); // evicts + writes back
    EXPECT_EQ(scheme(h)->occupancy(), 0u);
}

TEST(ReplCache, RandomTrafficTransparent)
{
    Harness h(smallGeometry(),
              std::make_unique<ReplicationCacheScheme>(32));
    Rng rng(71);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.nextBelow(512) * 8;
        if (rng.chance(0.5)) {
            uint64_t v = rng.next();
            golden[a] = v;
            h.cache->storeWord(a, v);
        } else {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            ASSERT_EQ(h.cache->loadWord(a), expect);
        }
    }
    EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
    EXPECT_LE(scheme(h)->occupancy(), 32u);
}

TEST(ReplCache, CoverageImprovesWithCapacity)
{
    auto due_rate = [&](unsigned entries) {
        Harness h(smallGeometry(),
                  std::make_unique<ReplicationCacheScheme>(entries));
        Rng rng(73);
        // Low-locality store stream over the whole cache.
        for (int i = 0; i < 2000; ++i)
            h.cache->storeWord(rng.nextBelow(128) * 8, rng.next());
        unsigned dues = 0, probes = 0;
        for (Row r = 0; r < 128; ++r) {
            if (!h.cache->rowDirty(r))
                continue;
            uint64_t good = h.cache->rowData(r).toUint64();
            h.cache->corruptBit(r, 5);
            auto out = h.cache->load(h.cache->rowAddr(r), 8, nullptr);
            ++probes;
            if (out.due) {
                ++dues;
                h.cache->pokeRowData(r, WideWord::fromUint64(good, 8));
            }
        }
        return static_cast<double>(dues) / static_cast<double>(probes);
    };
    double small = due_rate(8);
    double large = due_rate(128);
    EXPECT_GT(small, 0.5); // most dirty words unprotected
    EXPECT_EQ(large, 0.0); // buffer as large as the cache: full cover
}

TEST(ReplCache, AreaScalesWithBufferNotCache)
{
    // The dedicated buffer dominates the overhead — the paper's "not
    // area-efficient for large caches" point.
    Harness h(smallGeometry(),
              std::make_unique<ReplicationCacheScheme>(64));
    uint64_t bits = h.cache->scheme()->codeBitsTotal();
    // 128 rows x 8 parity + 64 entries x (64 data + 8 tag).
    EXPECT_EQ(bits, 128u * 8 + 64u * (64 + 8));
}

TEST(ReplCache, RejectsBadConfig)
{
    EXPECT_THROW(ReplicationCacheScheme(0), FatalError);
    EXPECT_THROW(ReplicationCacheScheme(8, 0), FatalError);
}

} // namespace
} // namespace cppc
