/**
 * @file
 * Soak tests: long randomized runs mixing traffic, fault injection and
 * recovery, differentially checked against a golden memory model.
 * Parameterized over seeds so failures pin down a reproducible stream.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "cppc/cppc_scheme.hh"
#include "protection/secded.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

class Soak : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(Soak, CppcTrafficWithSingleBitInjection)
{
    // Interleave random traffic with single-bit strikes on dirty data.
    // Every load must return the golden value: recovery is invisible.
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    auto *s = static_cast<CppcScheme *>(h.cache->scheme());
    Rng rng(GetParam());
    std::map<Addr, uint64_t> golden;
    uint64_t injected = 0;
    for (int i = 0; i < 30000; ++i) {
        double roll = rng.nextDouble();
        Addr a = rng.nextBelow(512) * 8;
        if (roll < 0.35) {
            uint64_t v = rng.next();
            golden[a] = v;
            h.cache->storeWord(a, v);
        } else if (roll < 0.95) {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            ASSERT_EQ(h.cache->loadWord(a), expect)
                << "seed " << GetParam() << " iter " << i;
        } else {
            // Strike a random valid row; the next access to it (soft
            // errors are rare enough that one is pending at a time)
            // detects and repairs it.
            Row r = static_cast<Row>(rng.nextBelow(128));
            if (h.cache->rowValid(r)) {
                h.cache->corruptBit(
                    r, static_cast<unsigned>(rng.nextBelow(64)));
                ++injected;
                auto out = h.cache->load(h.cache->rowAddr(r), 8, nullptr);
                ASSERT_TRUE(out.fault_detected);
                ASSERT_FALSE(out.due) << "seed " << GetParam();
            }
        }
    }
    EXPECT_GT(injected, 100u);
    EXPECT_EQ(s->stats().due, 0u);
    // Sweep any still-latent faults through loads, then flush and
    // compare the memory image.
    for (const auto &[a, v] : golden)
        ASSERT_EQ(h.cache->loadWord(a), v);
    h.cache->flushAll();
    for (const auto &[a, v] : golden) {
        uint8_t buf[8];
        h.mem.peek(a, buf, 8);
        uint64_t got;
        std::memcpy(&got, buf, 8);
        ASSERT_EQ(got, v);
    }
}

TEST_P(Soak, SecdedEquivalentRun)
{
    Harness h(smallGeometry(), std::make_unique<SecdedScheme>(8));
    Rng rng(GetParam() ^ 0xABCD);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 20000; ++i) {
        double roll = rng.nextDouble();
        Addr a = rng.nextBelow(512) * 8;
        if (roll < 0.35) {
            uint64_t v = rng.next();
            golden[a] = v;
            h.cache->storeWord(a, v);
        } else if (roll < 0.95) {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            ASSERT_EQ(h.cache->loadWord(a), expect);
        } else {
            Row r = static_cast<Row>(rng.nextBelow(128));
            if (h.cache->rowValid(r)) {
                h.cache->corruptBit(
                    r, static_cast<unsigned>(rng.nextBelow(64)));
                auto out = h.cache->load(h.cache->rowAddr(r), 8, nullptr);
                ASSERT_FALSE(out.due);
            }
        }
    }
    EXPECT_EQ(h.cache->scheme()->stats().due, 0u);
}

TEST_P(Soak, CppcSpatialStrikesDuringTraffic)
{
    // Spatial strikes (within the guaranteed envelope) arriving while
    // the cache is being actively used.  When a strike lands on a
    // sparsely dirty region it can leave exactly the Section 4.6
    // ambiguous residue (e.g. two dirty rows four classes apart with
    // identical masks), which must surface as an honest DUE — never as
    // silent corruption.
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    Rng rng(GetParam() + 5);
    std::map<Addr, uint64_t> golden;
    uint64_t strikes = 0, dues = 0;
    for (int i = 0; i < 15000; ++i) {
        double roll = rng.nextDouble();
        Addr a = rng.nextBelow(512) * 8;
        if (roll < 0.35) {
            uint64_t v = rng.next();
            golden[a] = v;
            h.cache->storeWord(a, v);
        } else if (roll < 0.97) {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            ASSERT_EQ(h.cache->loadWord(a), expect) << "iter " << i;
        } else {
            unsigned height = static_cast<unsigned>(rng.nextRange(2, 6));
            unsigned width = static_cast<unsigned>(rng.nextRange(1, 8));
            Row r0 = static_cast<Row>(rng.nextBelow(128 - height));
            unsigned c0 =
                static_cast<unsigned>(rng.nextBelow(64 - width + 1));
            bool all_valid = true;
            for (Row r = r0; r < r0 + height; ++r)
                all_valid &= h.cache->rowValid(r);
            if (!all_valid)
                continue;
            for (Row r = r0; r < r0 + height; ++r)
                for (unsigned c = c0; c < c0 + width; ++c)
                    h.cache->corruptBit(r, c);
            ++strikes;
            auto out = h.cache->load(h.cache->rowAddr(r0), 8, nullptr);
            ASSERT_TRUE(out.fault_detected);
            if (out.due) {
                ++dues;
                // Machine-check territory: restore architecturally and
                // continue the soak (the OS would reload the job).
                for (Row r = r0; r < r0 + height; ++r) {
                    Addr ra = h.cache->rowAddr(r);
                    uint64_t v = golden.count(ra) ? golden[ra] : 0;
                    h.cache->pokeRowData(r, WideWord::fromUint64(v, 8));
                }
            } else {
                // Corrected: every struck row must be bit-exact.
                for (Row r = r0; r < r0 + height; ++r) {
                    Addr ra = h.cache->rowAddr(r);
                    uint64_t v = golden.count(ra) ? golden[ra] : 0;
                    ASSERT_EQ(h.cache->rowData(r).toUint64(), v)
                        << "iter " << i << " row " << r;
                }
            }
        }
    }
    // Every value must still read back correctly, and ambiguous DUEs
    // must stay a small minority of strikes.
    for (const auto &[a, v] : golden)
        ASSERT_EQ(h.cache->loadWord(a), v);
    EXPECT_GT(strikes, 100u);
    EXPECT_LT(dues * 5, strikes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soak,
                         ::testing::Values(1ull, 0xDEADull, 0xC0DEull));

} // namespace
} // namespace cppc
