/**
 * @file
 * Shared fixtures for cache/protection tests: a small hierarchy with a
 * backing memory, deterministic data patterns, row-addressing helpers
 * for fault-injection scenarios, and seed-reporting assertion macros
 * for randomized tests.
 */

#ifndef CPPC_TESTS_TEST_HELPERS_HH
#define CPPC_TESTS_TEST_HELPERS_HH

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "cache/memory_level.hh"
#include "cache/write_back_cache.hh"
#include "util/rng.hh"

namespace cppc::test {

/**
 * The RNG seed of the randomized scenario currently executing, so a
 * failing assertion can print how to reproduce itself.  0 = none
 * registered.
 */
inline uint64_t &
activeSeed()
{
    static uint64_t seed = 0;
    return seed;
}

/**
 * RAII registration of a randomized test's seed.  Declare one right
 * after seeding the Rng:
 *
 *   Rng rng(kSeed);
 *   ScopedSeed scoped(kSeed);
 *
 * and use the CPPC_ASSERT_* / CPPC_EXPECT_* macros below; any failure
 * then reports the seed alongside the failing expression.
 */
class ScopedSeed
{
  public:
    explicit ScopedSeed(uint64_t seed) : prev_(activeSeed())
    {
        activeSeed() = seed;
    }
    ~ScopedSeed() { activeSeed() = prev_; }

    ScopedSeed(const ScopedSeed &) = delete;
    ScopedSeed &operator=(const ScopedSeed &) = delete;

  private:
    uint64_t prev_;
};

/**
 * Context appended to a failing CPPC_* assertion: the expression as
 * written at its source location, plus the active RNG seed (when a
 * ScopedSeed is live) so the exact failing sequence can be replayed.
 */
inline std::string
failureContext(const char *file, int line, const char *expr)
{
    std::string out = "\n  expression: ";
    out += expr;
    out += "\n  location:   ";
    out += file;
    out += ":";
    out += std::to_string(line);
    if (activeSeed() != 0) {
        out += "\n  rng seed:   ";
        out += std::to_string(activeSeed());
        out += "  (re-run with this seed to reproduce)";
    }
    return out;
}

#define CPPC_ASSERT_TRUE(cond)                                          \
    ASSERT_TRUE(cond) << cppc::test::failureContext(__FILE__, __LINE__, \
                                                    #cond)
#define CPPC_ASSERT_FALSE(cond)                                         \
    ASSERT_FALSE(cond) << cppc::test::failureContext(__FILE__,          \
                                                     __LINE__, #cond)
#define CPPC_ASSERT_EQ(a, b)                                            \
    ASSERT_EQ(a, b) << cppc::test::failureContext(__FILE__, __LINE__,   \
                                                  #a " == " #b)
#define CPPC_EXPECT_EQ(a, b)                                            \
    EXPECT_EQ(a, b) << cppc::test::failureContext(__FILE__, __LINE__,   \
                                                  #a " == " #b)

/** A single cache in front of main memory. */
struct Harness
{
    MainMemory mem;
    std::unique_ptr<WriteBackCache> cache;

    // The cache holds a pointer to mem: the harness must never move.
    // (Factory functions returning prvalues are fine under C++17
    // guaranteed copy elision.)
    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    Harness(const CacheGeometry &geom,
            std::unique_ptr<ProtectionScheme> scheme,
            ReplacementKind repl = ReplacementKind::LRU)
    {
        cache = std::make_unique<WriteBackCache>("L1D", geom, repl, &mem,
                                                 std::move(scheme));
    }

    /** Deterministic, distinctive value for a given address. */
    static uint64_t
    valueFor(Addr addr)
    {
        uint64_t x = addr + 0x1234;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    /**
     * Address of row (set, way=0, unit) for a direct-mapped geometry;
     * tag 0, so row index r maps straight to address r * unit_bytes.
     */
    Addr
    addrOfRow(Row row) const
    {
        const CacheGeometry &g = cache->geometry();
        unsigned upl = g.unitsPerLine();
        unsigned line = row / upl;
        unsigned unit = row % upl;
        // Assumes assoc == 1 so line index == set.
        return static_cast<Addr>(line) * g.line_bytes +
            unit * g.unit_bytes;
    }

    /** Store a deterministic dirty word into every unit (assoc 1). */
    void
    dirtyAllRows()
    {
        const CacheGeometry &g = cache->geometry();
        for (Row r = 0; r < g.numRows(); ++r) {
            Addr a = addrOfRow(r);
            uint64_t v = valueFor(a);
            uint8_t buf[64];
            for (unsigned i = 0; i < g.unit_bytes; ++i)
                buf[i] = static_cast<uint8_t>(v >> (8 * (i % 8))) ^
                    static_cast<uint8_t>(i * 37);
            cache->store(a, g.unit_bytes, buf);
        }
    }
};

/** Small direct-mapped geometry convenient for row-level tests. */
inline CacheGeometry
smallGeometry(unsigned unit_bytes = 8)
{
    CacheGeometry g;
    g.size_bytes = 1024; // 32 lines of 32 B
    g.assoc = 1;
    g.line_bytes = 32;
    g.unit_bytes = unit_bytes;
    return g;
}

} // namespace cppc::test

#endif // CPPC_TESTS_TEST_HELPERS_HH
