#include <gtest/gtest.h>

#include "cppc/cppc_scheme.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

CppcScheme *
scheme(Harness &h)
{
    return static_cast<CppcScheme *>(h.cache->scheme());
}

/** Snapshot of all row values for golden comparison. */
std::vector<uint64_t>
snapshot(Harness &h)
{
    std::vector<uint64_t> v;
    unsigned n = h.cache->geometry().numRows();
    for (Row r = 0; r < n; ++r)
        v.push_back(h.cache->rowData(r).toUint64());
    return v;
}

/** Inject a dense spatial rectangle: rows [r0, r0+h), bits [c0, c0+w). */
void
injectRect(Harness &h, Row r0, unsigned height, unsigned c0, unsigned width)
{
    for (Row r = r0; r < r0 + height; ++r)
        for (unsigned c = c0; c < c0 + width; ++c)
            h.cache->corruptBit(r, c);
}

class SpatialHeights : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SpatialHeights, DenseRectanglesCorrectedEndToEnd)
{
    // All dense strikes of this height, sweeping width and column
    // offset, injected into a live cache and triggered by a load.
    unsigned height = GetParam();
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    for (unsigned width = 1; width <= 8; ++width) {
        for (unsigned c0 = 0; c0 + width <= 64; c0 += 5) {
            // The guaranteed one-pair envelope: 7-row strikes must fit
            // one byte column (straddles need a second pair).
            if (height == 7 && (c0 % 8) + width > 8)
                continue;
            for (Row r0 : {0u, 5u, 17u, 120u - height}) {
                injectRect(h, r0, height, c0, width);
                auto out = h.cache->load(h.addrOfRow(r0), 8, nullptr);
                ASSERT_TRUE(out.fault_detected)
                    << "h=" << height << " w=" << width << " c0=" << c0;
                ASSERT_FALSE(out.due)
                    << "h=" << height << " w=" << width << " c0=" << c0
                    << " r0=" << r0;
                for (Row r = 0; r < 128; ++r)
                    ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r])
                        << "row " << r << " after h=" << height
                        << " w=" << width << " c0=" << c0;
                ASSERT_TRUE(scheme(h)->invariantHolds());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(HeightsUpTo7, SpatialHeights,
                         ::testing::Range(1u, 8u));

TEST(CppcSpatial, Full8x8SquareIsDueWithOnePair)
{
    // Section 4.6's first special case.
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    h.dirtyAllRows();
    injectRect(h, 8, 8, 16, 8);
    auto out = h.cache->load(h.addrOfRow(8), 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_TRUE(out.due);
}

TEST(CppcSpatial, Full8x8SquareCorrectedWithTwoPairs)
{
    // Section 4.6: a second register pair splits the 8x8 strike into
    // two separable 4x8 strikes.
    CppcConfig cfg;
    cfg.pairs_per_domain = 2;
    Harness h(smallGeometry(), std::make_unique<CppcScheme>(cfg));
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    injectRect(h, 8, 8, 16, 8);
    auto out = h.cache->load(h.addrOfRow(8), 8, nullptr);
    EXPECT_FALSE(out.due);
    for (Row r = 0; r < 128; ++r)
        ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r]);
}

TEST(CppcSpatial, TallStraddlingStrikesNeedTwoPairs)
{
    // 7- and 8-row strikes across a byte boundary: DUE with one pair,
    // corrected with two.
    for (unsigned height : {7u, 8u}) {
        {
            Harness h(smallGeometry(), std::make_unique<CppcScheme>());
            h.dirtyAllRows();
            injectRect(h, 16, height, 13, 6);
            auto out = h.cache->load(h.addrOfRow(16), 8, nullptr);
            EXPECT_TRUE(out.due) << "one pair, h=" << height;
        }
        {
            CppcConfig cfg;
            cfg.pairs_per_domain = 2;
            Harness h(smallGeometry(), std::make_unique<CppcScheme>(cfg));
            h.dirtyAllRows();
            std::vector<uint64_t> golden = snapshot(h);
            injectRect(h, 16, height, 13, 6);
            auto out = h.cache->load(h.addrOfRow(16), 8, nullptr);
            EXPECT_FALSE(out.due) << "two pairs, h=" << height;
            for (Row r = 0; r < 128; ++r)
                ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r]);
        }
    }
}

TEST(CppcSpatial, EightPairsNoShiftingCorrects8x8)
{
    // Section 4.11: one pair per class, no barrel shifters at all.
    CppcConfig cfg;
    cfg.pairs_per_domain = 8;
    cfg.byte_shifting = false;
    Harness h(smallGeometry(), std::make_unique<CppcScheme>(cfg));
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    injectRect(h, 40, 8, 33, 8);
    auto out = h.cache->load(h.addrOfRow(40), 8, nullptr);
    EXPECT_FALSE(out.due);
    for (Row r = 0; r < 128; ++r)
        ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r]);
}

TEST(CppcSpatial, VerticalFaultTallerThanEnvelopeIsDue)
{
    // Rows 0 and 8 share a rotation class: a "strike" touching both is
    // beyond the 8-row envelope (recovery step 5's distance check).
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    h.dirtyAllRows();
    h.cache->corruptBit(0, 4);
    h.cache->corruptBit(8, 4);
    auto out = h.cache->load(h.addrOfRow(0), 8, nullptr);
    EXPECT_TRUE(out.due);
}

TEST(CppcSpatial, SparseSubPatternsOfStrikes)
{
    // Realistic strikes rarely flip every bit of the rectangle; sample
    // sparse sub-patterns and require exact correction or DUE, never
    // silent corruption.
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    Rng rng(991);
    unsigned corrected = 0, due = 0;
    for (int rep = 0; rep < 300; ++rep) {
        unsigned height = static_cast<unsigned>(rng.nextRange(2, 6));
        unsigned width = static_cast<unsigned>(rng.nextRange(2, 8));
        Row r0 = static_cast<Row>(rng.nextBelow(128 - height));
        unsigned c0 = static_cast<unsigned>(rng.nextBelow(64 - width + 1));
        Row first_faulty = 0;
        bool any = false;
        for (Row r = r0; r < r0 + height; ++r) {
            bool row_any = false;
            for (unsigned c = c0; c < c0 + width; ++c) {
                if (rng.chance(0.5)) {
                    h.cache->corruptBit(r, c);
                    row_any = true;
                }
            }
            if (row_any && !any) {
                first_faulty = r;
                any = true;
            }
        }
        if (!any)
            continue;
        auto out = h.cache->load(h.addrOfRow(first_faulty), 8, nullptr);
        if (out.due) {
            ++due;
            // Repair out-of-band so the next iteration starts clean.
            for (Row r = 0; r < 128; ++r)
                h.cache->pokeRowData(
                    r, WideWord::fromUint64(golden[r], 8));
            ASSERT_TRUE(scheme(h)->scrubRegisters());
        } else {
            ++corrected;
            for (Row r = 0; r < 128; ++r)
                ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r])
                    << "rep " << rep << " row " << r;
        }
    }
    // Most in-envelope strikes are corrected; the DUE remainder are
    // sparse patterns that alias under rotation (e.g. identical masks
    // in two rows), which must be refused, not guessed.  The exactness
    // assertions above are the hard property: zero silent corruption.
    EXPECT_GT(corrected, due * 5);
}

TEST(CppcSpatial, StrikeSpanningCleanAndDirtyRows)
{
    // A strike across a clean/dirty boundary: clean rows refetch,
    // dirty rows go through the register recovery.
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    // Rows 0-3 (line 0): loaded clean; rows 4-7 (line 1): stored dirty.
    uint8_t seed[32];
    for (unsigned i = 0; i < 32; ++i)
        seed[i] = static_cast<uint8_t>(i ^ 0x3c);
    h.mem.poke(0x0, seed, 32);
    h.cache->loadWord(0x0); // fills rows 0-3 clean
    for (unsigned u = 0; u < 4; ++u)
        h.cache->storeWord(0x20 + u * 8, 0x1000 + u);
    std::vector<uint64_t> golden = snapshot(h);

    injectRect(h, 2, 4, 9, 6); // rows 2-5: two clean, two dirty
    auto out = h.cache->load(h.addrOfRow(2), 8, nullptr);
    EXPECT_FALSE(out.due);
    for (Row r = 0; r < 8; ++r)
        EXPECT_EQ(h.cache->rowData(r).toUint64(), golden[r]) << "row " << r;
    EXPECT_GE(scheme(h)->stats().refetched_clean, 2u);
    EXPECT_GE(scheme(h)->stats().corrected_dirty, 2u);
}

TEST(CppcSpatial, StrikeSpanningDomainBoundary)
{
    // Domains are contiguous row regions; a strike across the boundary
    // splits into independent per-domain recoveries.
    CppcConfig cfg;
    cfg.num_domains = 2; // rows 0-63 / 64-127
    Harness h(smallGeometry(), std::make_unique<CppcScheme>(cfg));
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    injectRect(h, 61, 6, 40, 5); // rows 61-66 straddle the boundary
    auto out = h.cache->load(h.addrOfRow(61), 8, nullptr);
    EXPECT_FALSE(out.due);
    for (Row r = 0; r < 128; ++r)
        ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r]);
}

TEST(CppcSpatial, PaperLocatorEndToEnd)
{
    // The literal Section 4.5 procedure wired into the scheme.
    CppcConfig cfg;
    cfg.locator = CppcConfig::Locator::Paper;
    Harness h(smallGeometry(), std::make_unique<CppcScheme>(cfg));
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    injectRect(h, 0, 4, 5, 8); // the Figure 8/9 walk-through strike
    auto out = h.cache->load(h.addrOfRow(0), 8, nullptr);
    EXPECT_FALSE(out.due);
    for (Row r = 0; r < 128; ++r)
        ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r]);
}

TEST(CppcSpatial, HorizontalFaultAcrossWordBoundary)
{
    // Section 3.6: a horizontal strike across two adjacent words hits
    // different parts of different rows; interleaved parity plus the
    // registers recover both (here bits 62-63 of row 0, 0-4 of row 1).
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    h.cache->corruptBit(0, 62);
    h.cache->corruptBit(0, 63);
    for (unsigned c = 0; c <= 4; ++c)
        h.cache->corruptBit(1, c);
    auto out = h.cache->load(h.addrOfRow(0), 8, nullptr);
    EXPECT_FALSE(out.due);
    for (Row r = 0; r < 128; ++r)
        ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r]);
}

TEST(CppcSpatial, L2WideUnitsSpatialCorrection)
{
    // 32-byte protection units: strikes inside an 8x8 square spanning
    // four 256-bit rows.
    CacheGeometry g = test::smallGeometry(32);
    Harness h(g, std::make_unique<CppcScheme>());
    for (Row r = 0; r < g.numRows(); ++r) {
        uint8_t block[32];
        uint64_t v = Harness::valueFor(r * 1000);
        for (unsigned i = 0; i < 32; ++i)
            block[i] = static_cast<uint8_t>(v >> (8 * (i % 8))) + i;
        h.cache->store(h.addrOfRow(r), 32, block);
    }
    std::vector<WideWord> golden;
    for (Row r = 0; r < g.numRows(); ++r)
        golden.push_back(h.cache->rowData(r));

    for (unsigned c0 : {0u, 77u, 130u, 248u}) {
        unsigned width = std::min(8u, 256 - c0);
        for (Row r = 4; r < 8; ++r)
            for (unsigned c = c0; c < c0 + width; ++c)
                h.cache->corruptBit(r, c);
        auto out = h.cache->load(h.addrOfRow(4), 32, nullptr);
        ASSERT_FALSE(out.due) << "c0=" << c0;
        for (Row r = 0; r < g.numRows(); ++r)
            ASSERT_EQ(h.cache->rowData(r), golden[r]) << "row " << r;
    }
}

TEST(CppcSpatial, RecoverySurvivesSubsequentTraffic)
{
    // After a spatial recovery, the cache keeps operating and the
    // invariant machinery remains intact.
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    h.dirtyAllRows();
    injectRect(h, 10, 4, 20, 6);
    h.cache->load(h.addrOfRow(10), 8, nullptr);
    Rng rng(555);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.nextBelow(512) * 8;
        if (rng.chance(0.5))
            h.cache->storeWord(a, rng.next());
        else
            h.cache->loadWord(a);
    }
    EXPECT_TRUE(scheme(h)->invariantHolds());
    EXPECT_EQ(scheme(h)->stats().due, 0u);
}

} // namespace
} // namespace cppc
