/**
 * @file
 * BoundedMpmcQueue unit tests: FIFO order, full/empty edges, ABA
 * safety across cursor wraparound at tiny capacities, and a
 * differential MPMC stress against a mutex-guarded reference queue
 * (same completion multiset).  The stress tests are the ones the TSan
 * and ASan CI legs exist for.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/work_steal_queue.hh"

namespace cppc {
namespace {

TEST(WorkStealQueue, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(BoundedMpmcQueue<int>(1).capacity(), 2u);
    EXPECT_EQ(BoundedMpmcQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(BoundedMpmcQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(BoundedMpmcQueue<int>(512).capacity(), 512u);
    EXPECT_EQ(BoundedMpmcQueue<int>(513).capacity(), 1024u);
}

TEST(WorkStealQueue, FifoSingleThread)
{
    BoundedMpmcQueue<int> q(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.tryPush(int(i)));
    for (int i = 0; i < 8; ++i) {
        int v = -1;
        EXPECT_TRUE(q.tryPop(v));
        EXPECT_EQ(v, i);
    }
}

TEST(WorkStealQueue, FullAndEmptyEdges)
{
    BoundedMpmcQueue<int> q(2);
    EXPECT_TRUE(q.emptyApprox());
    int v = -1;
    EXPECT_FALSE(q.tryPop(v));

    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3)) << "ring of 2 must reject a third push";
    EXPECT_FALSE(q.emptyApprox());

    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 1);
    // The freed cell is immediately reusable by the next epoch.
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 2);
    EXPECT_TRUE(q.tryPop(v));
    EXPECT_EQ(v, 3);
    EXPECT_FALSE(q.tryPop(v));
    EXPECT_TRUE(q.emptyApprox());
}

TEST(WorkStealQueue, MoveOnlyElements)
{
    BoundedMpmcQueue<std::unique_ptr<int>> q(4);
    EXPECT_TRUE(q.tryPush(std::make_unique<int>(42)));
    std::unique_ptr<int> out;
    EXPECT_TRUE(q.tryPop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, 42);
}

TEST(WorkStealQueue, WraparoundKeepsFifoAcrossManyLaps)
{
    // Tiny ring, many laps: cursor positions exceed the capacity by
    // orders of magnitude, so every cell's sequence number is recycled
    // thousands of times.  Monotonic seqs make this ABA-safe; any
    // epoch confusion shows up as a lost, duplicated or reordered
    // element.
    BoundedMpmcQueue<int> q(2);
    int next_push = 0, next_pop = 0;
    for (int lap = 0; lap < 10'000; ++lap) {
        EXPECT_TRUE(q.tryPush(int(next_push)));
        ++next_push;
        EXPECT_TRUE(q.tryPush(int(next_push)));
        ++next_push;
        int v = -1;
        EXPECT_TRUE(q.tryPop(v));
        EXPECT_EQ(v, next_pop++);
        EXPECT_TRUE(q.tryPop(v));
        EXPECT_EQ(v, next_pop++);
    }
}

/** Mutex-guarded reference queue with the same non-blocking API. */
class MutexQueue
{
  public:
    explicit MutexQueue(size_t capacity) : capacity_(capacity) {}

    bool
    tryPush(int v)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (items_.size() >= capacity_)
            return false;
        items_.push_back(v);
        return true;
    }

    bool
    tryPop(int &out)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (items_.empty())
            return false;
        out = items_.front();
        items_.erase(items_.begin());
        return true;
    }

  private:
    std::mutex mu_;
    std::vector<int> items_;
    size_t capacity_;
};

/**
 * Drive @p queue with @p producers x @p consumers threads, each value
 * pushed exactly once; returns the sorted multiset of popped values.
 */
template <typename Queue>
std::vector<int>
mpmcDrive(Queue &queue, int producers, int consumers, int per_producer)
{
    std::atomic<int> produced{0};
    std::atomic<bool> done{false};
    std::mutex sink_mu;
    std::vector<int> sink;

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i) {
                int v = p * per_producer + i;
                while (!queue.tryPush(int(v)))
                    std::this_thread::yield();
                produced.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&] {
            std::vector<int> local;
            int v = -1;
            for (;;) {
                if (queue.tryPop(v)) {
                    local.push_back(v);
                } else if (done.load(std::memory_order_acquire)) {
                    // One final drain after the producers finished, so
                    // a value published right before `done` flipped is
                    // not stranded.
                    while (queue.tryPop(v))
                        local.push_back(v);
                    break;
                } else {
                    std::this_thread::yield();
                }
            }
            std::lock_guard<std::mutex> lock(sink_mu);
            sink.insert(sink.end(), local.begin(), local.end());
        });
    }
    for (int p = 0; p < producers; ++p)
        threads[p].join();
    done.store(true, std::memory_order_release);
    for (size_t t = producers; t < threads.size(); ++t)
        threads[t].join();

    std::sort(sink.begin(), sink.end());
    return sink;
}

TEST(WorkStealQueue, MpmcDifferentialAgainstMutexQueue)
{
    // Same workload through the lock-free ring and the mutex-guarded
    // reference: both must complete the identical multiset (every
    // value exactly once, none lost, none duplicated).
    constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 2'000;
    BoundedMpmcQueue<int> lockfree(64);
    MutexQueue reference(64);

    std::vector<int> got_lockfree =
        mpmcDrive(lockfree, kProducers, kConsumers, kPerProducer);
    std::vector<int> got_reference =
        mpmcDrive(reference, kProducers, kConsumers, kPerProducer);

    std::vector<int> expect(kProducers * kPerProducer);
    for (size_t i = 0; i < expect.size(); ++i)
        expect[i] = static_cast<int>(i);
    EXPECT_EQ(got_lockfree, expect);
    EXPECT_EQ(got_reference, expect);
    EXPECT_EQ(got_lockfree, got_reference);
}

TEST(WorkStealQueue, MpmcWraparoundStressAtTinyCapacity)
{
    // Capacity 2 under 8 threads: maximal contention on two cells
    // whose sequence numbers wrap continuously.  This is the ABA
    // honeypot — a stale-epoch bug loses or duplicates values within
    // seconds under TSan.
    BoundedMpmcQueue<int> q(2);
    std::vector<int> got = mpmcDrive(q, 4, 4, 1'000);
    std::vector<int> expect(4 * 1'000);
    for (size_t i = 0; i < expect.size(); ++i)
        expect[i] = static_cast<int>(i);
    EXPECT_EQ(got, expect);
}

} // namespace
} // namespace cppc
