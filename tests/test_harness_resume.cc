/**
 * @file
 * Checkpoint/resume determinism tests for the three crash-safe
 * front-ends.  Each test runs the harness to completion once, rewrites
 * the journal keeping only the first K cell records (the line-per-cell
 * format makes truncation at line granularity exactly what a SIGKILL
 * between appends leaves behind), resumes, and asserts the merged
 * result is bit-identical to an uninterrupted serial reference.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cppc/cppc_scheme.hh"
#include "fault/campaign.hh"
#include "harness/runners.hh"
#include "sim/sweep.hh"
#include "test_helpers.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_(testing::TempDir() + "cppc_resume_" + tag + "_" +
                std::to_string(::getpid()))
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/**
 * Simulate a kill between journal appends: keep the header, the config
 * line, and the first @p keep_cells cell records; drop the rest.
 */
void
truncateJournal(const std::string &path, size_t keep_cells)
{
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << "journal missing: " << path;
    std::ostringstream kept;
    std::string line;
    size_t cells = 0;
    while (std::getline(is, line)) {
        bool is_cell = line.rfind("cell ", 0) == 0;
        if (is_cell && cells >= keep_cells)
            continue;
        kept << line << "\n";
        if (is_cell)
            ++cells;
    }
    is.close();
    ASSERT_GE(cells, keep_cells) << "journal had fewer cells than K";
    std::ofstream os(path, std::ios::trunc);
    os << kept.str();
}

size_t
countCellLines(const std::string &path)
{
    std::ifstream is(path);
    std::string line;
    size_t n = 0;
    while (std::getline(is, line))
        if (line.rfind("cell ", 0) == 0)
            ++n;
    return n;
}

HarnessOptions
journaledOptions(const std::string &path, bool resume)
{
    HarnessOptions h;
    h.journal_path = path;
    h.resume = resume;
    h.jobs = 2;
    h.use_stop_token = false;
    return h;
}

// ---------------------------------------------------------------- sweep

std::vector<BenchmarkProfile>
smallProfiles()
{
    const auto &all = spec2000Profiles();
    return {all[0], all[1]};
}

TEST(HarnessResume, SweepResumeMatchesSerialReference)
{
    TempFile tmp("sweep");
    std::vector<BenchmarkProfile> profiles = smallProfiles();
    std::vector<SchemeKind> kinds = {SchemeKind::Parity1D,
                                     SchemeKind::Cppc};
    ExperimentOptions base;
    base.instructions = 30'000;

    // Full journaled run, then "kill" it after 2 of the 4 cells.
    {
        SweepHarnessResult full = runSweepHarness(
            profiles, kinds, base, journaledOptions(tmp.path(), false));
        ASSERT_TRUE(full.report.complete());
        ASSERT_EQ(countCellLines(tmp.path()), 4u);
    }
    truncateJournal(tmp.path(), 2);

    SweepHarnessResult resumed = runSweepHarness(
        profiles, kinds, base, journaledOptions(tmp.path(), true));
    ASSERT_TRUE(resumed.report.complete());
    // ok counts every good cell; resumed_ok is the subset replayed
    // from the journal rather than re-executed.
    EXPECT_EQ(resumed.report.ok, 4u);
    EXPECT_EQ(resumed.report.resumed_ok, 2u);

    // The merged grid — half decoded from the journal, half re-run —
    // is bit-identical to an uninterrupted serial sweep.
    SweepGrid reference = runSweepSerial(profiles, kinds, base);
    EXPECT_TRUE(gridsIdentical(resumed.grid, reference));
}

TEST(HarnessResume, SweepJournalPayloadDecodesToOriginalMetrics)
{
    TempFile tmp("sweeproundtrip");
    std::vector<BenchmarkProfile> profiles = {spec2000Profiles()[0]};
    std::vector<SchemeKind> kinds = {SchemeKind::Cppc};
    ExperimentOptions base;
    base.instructions = 30'000;

    SweepHarnessResult first = runSweepHarness(
        profiles, kinds, base, journaledOptions(tmp.path(), false));
    ASSERT_TRUE(first.report.complete());

    // A resume with nothing left to do yields the same grid, entirely
    // from the journal, without executing a single instruction.
    SweepHarnessResult again = runSweepHarness(
        profiles, kinds, base, journaledOptions(tmp.path(), true));
    ASSERT_TRUE(again.report.complete());
    EXPECT_EQ(again.report.resumed_ok, 1u);
    EXPECT_EQ(again.report.ok, 1u);
    EXPECT_TRUE(gridsIdentical(again.grid, first.grid));
}

// ------------------------------------------------------------- campaign

void
populate(Harness &h, double dirty_fraction = 0.5, uint64_t seed = 3)
{
    Rng rng(seed);
    const CacheGeometry &g = h.cache->geometry();
    for (Addr a = 0; a < g.size_bytes; a += 8) {
        if (rng.chance(dirty_fraction)) {
            uint64_t v = rng.next();
            uint8_t buf[8];
            std::memcpy(buf, &v, 8);
            h.cache->store(a, 8, buf);
        } else {
            h.cache->load(a, 8, nullptr);
        }
    }
}

/** A factory-built campaign target wrapping the usual test harness. */
struct TestHost : CampaignHost
{
    Harness h;
    TestHost() : h(smallGeometry(), std::make_unique<CppcScheme>())
    {
        populate(h);
    }
    WriteBackCache &cache() override { return *h.cache; }
};

CampaignHostFactory
testFactory()
{
    return [] { return std::make_unique<TestHost>(); };
}

TEST(HarnessResume, CampaignResumeMatchesSerialReference)
{
    TempFile tmp("campaign");
    Campaign::Config cc;
    cc.injections = 1200; // 3 shards of kCampaignShardStrikes = 512
    cc.seed = 23;
    cc.shapes = StrikeShapeDistribution::scaledTechnologyMix(0.5);

    {
        CampaignHarnessResult full = runCampaignHarness(
            testFactory(), cc, "test-host",
            journaledOptions(tmp.path(), false));
        ASSERT_TRUE(full.report.complete());
        ASSERT_EQ(countCellLines(tmp.path()), 3u);
    }
    truncateJournal(tmp.path(), 1);

    CampaignHarnessResult resumed = runCampaignHarness(
        testFactory(), cc, "test-host",
        journaledOptions(tmp.path(), true));
    ASSERT_TRUE(resumed.report.complete());
    EXPECT_EQ(resumed.report.resumed_ok, 1u);

    // Serial reference on a freshly built identical host.
    TestHost ref;
    CampaignResult serial = Campaign(ref.cache(), cc).run();
    EXPECT_EQ(resumed.total.injections, serial.injections);
    EXPECT_EQ(resumed.total.benign, serial.benign);
    EXPECT_EQ(resumed.total.corrected, serial.corrected);
    EXPECT_EQ(resumed.total.due, serial.due);
    EXPECT_EQ(resumed.total.sdc, serial.sdc);
}

TEST(HarnessResume, CampaignResumeRejectsDifferentStrikeSequence)
{
    TempFile tmp("campaignseed");
    Campaign::Config cc;
    cc.injections = 600;
    cc.seed = 23;

    {
        CampaignHarnessResult full = runCampaignHarness(
            testFactory(), cc, "test-host",
            journaledOptions(tmp.path(), false));
        ASSERT_TRUE(full.report.complete());
    }

    // A different seed draws a different strike sequence; its hash no
    // longer matches the journal's config line, so blending the two
    // grids is refused loudly rather than silently mixed.
    cc.seed = 24;
    EXPECT_THROW(runCampaignHarness(testFactory(), cc, "test-host",
                                    journaledOptions(tmp.path(), true)),
                 FatalError);
}

// ----------------------------------------------------------------- fuzz

std::vector<FuzzSchemeSpec>
twoSchemes()
{
    const auto &all = conformanceSchemes();
    std::vector<FuzzSchemeSpec> out;
    for (const auto &s : all)
        if (s.name == "parity1d" || s.name == "cppc")
            out.push_back(s);
    EXPECT_EQ(out.size(), 2u);
    return out;
}

TEST(HarnessResume, FuzzResumeMatchesUninterruptedRun)
{
    const uint64_t base_seed = 9000;
    const uint64_t n_seeds = 20; // 3 batches of kFuzzBatchSeeds = 8
    const unsigned n_ops = 60;
    std::vector<FuzzSchemeSpec> specs = twoSchemes();

    // Uninterrupted reference (no journal at all).
    HarnessOptions plain;
    plain.jobs = 2;
    plain.use_stop_token = false;
    FuzzHarnessResult reference = runFuzzHarness(
        specs, /*run_tag=*/true, base_seed, n_seeds, n_ops, plain);
    ASSERT_TRUE(reference.report.complete());

    // Journaled run killed after 4 of the 9 batches (2 schemes x 3
    // batches + tagcppc x 3), then resumed.
    TempFile tmp("fuzz");
    {
        FuzzHarnessResult full =
            runFuzzHarness(specs, true, base_seed, n_seeds, n_ops,
                           journaledOptions(tmp.path(), false));
        ASSERT_TRUE(full.report.complete());
        ASSERT_EQ(countCellLines(tmp.path()), 9u);
    }
    truncateJournal(tmp.path(), 4);

    FuzzHarnessResult resumed =
        runFuzzHarness(specs, true, base_seed, n_seeds, n_ops,
                       journaledOptions(tmp.path(), true));
    ASSERT_TRUE(resumed.report.complete());
    EXPECT_EQ(resumed.report.resumed_ok, 4u);

    // Identical per-scheme aggregates, including the tag pseudo-scheme,
    // regardless of which batches came from the journal.
    ASSERT_EQ(resumed.per_scheme.size(), reference.per_scheme.size());
    for (size_t i = 0; i < resumed.per_scheme.size(); ++i) {
        EXPECT_EQ(resumed.per_scheme[i].first,
                  reference.per_scheme[i].first);
        EXPECT_TRUE(fuzzBatchesIdentical(resumed.per_scheme[i].second,
                                         reference.per_scheme[i].second))
            << "scheme " << resumed.per_scheme[i].first;
    }
    EXPECT_EQ(resumed.failures(), reference.failures());
}

TEST(HarnessResume, FuzzConfigBindsEverySweepParameter)
{
    std::vector<FuzzSchemeSpec> specs = twoSchemes();
    std::string a = fuzzConfigString(specs, true, 9000, 20, 60);
    // Any parameter change must change the config string, or a resume
    // could blend incompatible grids.
    EXPECT_NE(a, fuzzConfigString(specs, false, 9000, 20, 60));
    EXPECT_NE(a, fuzzConfigString(specs, true, 9001, 20, 60));
    EXPECT_NE(a, fuzzConfigString(specs, true, 9000, 28, 60));
    EXPECT_NE(a, fuzzConfigString(specs, true, 9000, 20, 61));
    std::vector<FuzzSchemeSpec> one = {specs[0]};
    EXPECT_NE(a, fuzzConfigString(one, true, 9000, 20, 60));
}

} // namespace
} // namespace cppc
