#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "protection/parity.hh"
#include "util/logging.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

std::unique_ptr<ProtectionScheme>
parity()
{
    return std::make_unique<OneDimParityScheme>(8);
}

TEST(Cache, ColdMissThenHit)
{
    Harness h(smallGeometry(), parity());
    auto out1 = h.cache->storeWord(0x100, 0xdead);
    EXPECT_FALSE(out1.hit);
    auto out2 = h.cache->storeWord(0x108, 0xbeef);
    EXPECT_TRUE(out2.hit); // same 32-byte line
    EXPECT_EQ(h.cache->loadWord(0x100), 0xdeadull);
    EXPECT_EQ(h.cache->loadWord(0x108), 0xbeefull);
    EXPECT_EQ(h.cache->stats().write_misses, 1u);
    EXPECT_EQ(h.cache->stats().write_hits, 1u);
    EXPECT_EQ(h.cache->stats().read_hits, 2u);
}

TEST(Cache, LoadReturnsStoredBytes)
{
    Harness h(smallGeometry(), parity());
    uint8_t in[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    h.cache->store(0x40, 8, in);
    uint8_t out[8] = {};
    h.cache->load(0x40, 8, out);
    EXPECT_EQ(std::memcmp(in, out, 8), 0);
}

TEST(Cache, PartialStoreMergesBytes)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x80, 0x1111111111111111ull);
    uint8_t b = 0xff;
    h.cache->store(0x82, 1, &b); // overwrite byte 2
    EXPECT_EQ(h.cache->loadWord(0x80), 0x11111111'11ff1111ull);
}

TEST(Cache, WriteBackOnEviction)
{
    CacheGeometry g = smallGeometry(); // 32 sets, direct-mapped
    Harness h(g, parity());
    Addr a = 0x0;
    Addr conflict = a + g.size_bytes; // same set, different tag
    h.cache->storeWord(a, 0xAAAA);
    h.cache->storeWord(conflict, 0xBBBB); // evicts the dirty line
    EXPECT_EQ(h.cache->stats().writebacks, 1u);

    uint8_t out[8];
    h.mem.peek(a, out, 8);
    uint64_t v;
    std::memcpy(&v, out, 8);
    EXPECT_EQ(v, 0xAAAAull); // dirty data reached memory
    // And loading it again round-trips through the refill.
    EXPECT_EQ(h.cache->loadWord(a), 0xAAAAull);
}

TEST(Cache, CleanEvictionDoesNotWriteBack)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, parity());
    uint8_t seed[8] = {9, 9, 9, 9, 9, 9, 9, 9};
    h.mem.poke(0x0, seed, 8);
    h.cache->loadWord(0x0);                  // clean fill
    h.cache->loadWord(0x0 + g.size_bytes);   // evicts it
    EXPECT_EQ(h.cache->stats().writebacks, 0u);
    EXPECT_EQ(h.cache->stats().clean_evictions, 1u);
}

TEST(Cache, DirtyBitsPerUnit)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, parity());
    h.cache->storeWord(0x20, 1); // unit 0 of line at 0x20
    Row r0 = 4;                  // line 1, unit 0 (4 units per line)
    EXPECT_TRUE(h.cache->rowDirty(r0));
    EXPECT_FALSE(h.cache->rowDirty(r0 + 1));
    EXPECT_FALSE(h.cache->rowDirty(r0 + 2));
}

TEST(Cache, LruVictimSelection)
{
    CacheGeometry g = smallGeometry();
    g.assoc = 2;
    g.size_bytes = 2048; // keep 32 sets
    Harness h(g, parity());
    Addr a = 0x0, b = a + 1024, c = b + 1024; // same set, 3 tags
    h.cache->storeWord(a, 1);
    h.cache->storeWord(b, 2);
    h.cache->loadWord(a);     // a more recent than b
    h.cache->storeWord(c, 3); // must evict b
    EXPECT_TRUE(h.cache->loadWord(a) == 1 &&
                h.cache->stats().read_misses == 0);
    auto miss = h.cache->loadWord(b); // b was evicted
    EXPECT_EQ(miss, 2u);
    EXPECT_EQ(h.cache->stats().read_misses, 1u);
}

TEST(Cache, MissRateAccounting)
{
    Harness h(smallGeometry(), parity());
    h.cache->loadWord(0x0);
    h.cache->loadWord(0x0);
    h.cache->loadWord(0x400); // different set -> miss
    EXPECT_EQ(h.cache->stats().accesses(), 3u);
    EXPECT_EQ(h.cache->stats().misses(), 2u);
    EXPECT_NEAR(h.cache->stats().missRate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, RowDataMatchesStoredValues)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x0, 0x0123456789abcdefull);
    WideWord w = h.cache->rowData(0);
    EXPECT_EQ(w.toUint64(), 0x0123456789abcdefull);
}

TEST(Cache, RowAddrInverse)
{
    Harness h(smallGeometry(), parity());
    h.dirtyAllRows();
    const CacheGeometry &g = h.cache->geometry();
    for (Row r = 0; r < g.numRows(); ++r) {
        ASSERT_TRUE(h.cache->rowValid(r));
        EXPECT_EQ(h.cache->rowAddr(r), h.addrOfRow(r));
    }
}

TEST(Cache, CorruptBitFlipsData)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x0, 0);
    h.cache->corruptBit(0, 17);
    EXPECT_EQ(h.cache->rowData(0).toUint64(), 1ull << 17);
}

TEST(Cache, RefetchRowRestoresCleanData)
{
    Harness h(smallGeometry(), parity());
    uint8_t seed[8] = {0x42, 0, 0, 0, 0, 0, 0, 0};
    h.mem.poke(0x0, seed, 8);
    h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 0);
    EXPECT_NE(h.cache->rowData(0).toUint64(), 0x42ull);
    EXPECT_TRUE(h.cache->refetchRow(0));
    EXPECT_EQ(h.cache->rowData(0).toUint64(), 0x42ull);
}

TEST(Cache, RefetchRowRefusesDirtyRows)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x0, 7);
    EXPECT_FALSE(h.cache->refetchRow(0));
}

TEST(Cache, FlushAllWritesEverythingBack)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x0, 11);
    h.cache->storeWord(0x20, 22);
    h.cache->flushAll();
    EXPECT_EQ(h.cache->stats().writebacks, 2u);
    EXPECT_EQ(h.cache->dirtyUnitCount(), 0u);
    uint8_t out[8];
    h.mem.peek(0x20, out, 8);
    uint64_t v;
    std::memcpy(&v, out, 8);
    EXPECT_EQ(v, 22ull);
}

TEST(Cache, DirtyFraction)
{
    Harness h(smallGeometry(), parity());
    EXPECT_EQ(h.cache->dirtyFraction(), 0.0);
    h.cache->storeWord(0x0, 1); // 1 dirty unit of 128
    EXPECT_NEAR(h.cache->dirtyFraction(), 1.0 / 128.0, 1e-12);
    h.dirtyAllRows();
    EXPECT_EQ(h.cache->dirtyFraction(), 1.0);
}

TEST(Cache, CrossLineAccessRejected)
{
    Harness h(smallGeometry(), parity());
    uint8_t buf[16] = {};
    EXPECT_THROW(h.cache->store(0x18, 16, buf), FatalError);
}

TEST(Cache, TwoLevelHierarchyWriteBackChain)
{
    // L1 (tiny) -> L2 (small) -> memory: dirty data flows down level by
    // level and survives.
    CacheGeometry l2g = smallGeometry();
    l2g.size_bytes = 4096;
    l2g.assoc = 2;
    l2g.unit_bytes = 32; // protection unit = L1 block (Section 3.5)
    MainMemory mem;
    WriteBackCache l2("L2", l2g, ReplacementKind::LRU, &mem,
                      std::make_unique<OneDimParityScheme>(8));

    CacheGeometry l1g = smallGeometry();
    l1g.size_bytes = 256; // 8 lines, forces evictions
    WriteBackCache l1("L1D", l1g, ReplacementKind::LRU, &l2,
                      std::make_unique<OneDimParityScheme>(8));

    Rng rng(5);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 2000; ++i) {
        Addr a = (rng.nextBelow(256)) * 8; // 2 KiB working set
        if (rng.chance(0.5)) {
            uint64_t v = rng.next();
            golden[a] = v;
            l1.storeWord(a, v);
        } else {
            uint64_t expect = golden.count(a) ? golden[a] : l1.loadWord(a);
            EXPECT_EQ(l1.loadWord(a), expect);
        }
    }
    // Flush everything: memory must hold the golden image.
    l1.flushAll();
    l2.flushAll();
    for (const auto &[a, v] : golden) {
        uint8_t out[8];
        mem.peek(a, out, 8);
        uint64_t got;
        std::memcpy(&got, out, 8);
        EXPECT_EQ(got, v) << "addr 0x" << std::hex << a;
    }
}

TEST(Cache, HasLineAndLineDirty)
{
    Harness h(smallGeometry(), parity());
    EXPECT_FALSE(h.cache->hasLine(0x40));
    h.cache->loadWord(0x40);
    EXPECT_TRUE(h.cache->hasLine(0x40));
    EXPECT_TRUE(h.cache->hasLine(0x58)); // same line
    EXPECT_FALSE(h.cache->lineDirty(0x40));
    h.cache->storeWord(0x48, 5);
    EXPECT_TRUE(h.cache->lineDirty(0x40));
}

TEST(Cache, InvalidateLineWritesBackDirtyData)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x40, 0x77);
    EXPECT_TRUE(h.cache->invalidateLine(0x40));
    EXPECT_FALSE(h.cache->hasLine(0x40));
    EXPECT_EQ(h.cache->invalidations(), 1u);
    uint8_t out[8];
    h.mem.peek(0x40, out, 8);
    uint64_t v;
    std::memcpy(&v, out, 8);
    EXPECT_EQ(v, 0x77ull);
    // Invalidating a non-resident line is a no-op.
    EXPECT_FALSE(h.cache->invalidateLine(0x1000));
}

TEST(Cache, DowngradeKeepsCleanCopy)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x40, 0x88);
    EXPECT_TRUE(h.cache->downgradeLine(0x40));
    EXPECT_TRUE(h.cache->hasLine(0x40));
    EXPECT_FALSE(h.cache->lineDirty(0x40));
    EXPECT_EQ(h.cache->loadWord(0x40), 0x88ull);
    uint8_t out[8];
    h.mem.peek(0x40, out, 8);
    uint64_t v;
    std::memcpy(&v, out, 8);
    EXPECT_EQ(v, 0x88ull); // reached memory
    // A clean line has nothing to downgrade.
    EXPECT_FALSE(h.cache->downgradeLine(0x40));
}

TEST(Cache, ScrubDirtyLinesWalksTheArray)
{
    Harness h(smallGeometry(), parity());
    for (unsigned i = 0; i < 8; ++i)
        h.cache->storeWord(i * 0x20, i);
    EXPECT_EQ(h.cache->scrubDirtyLines(3), 3u);
    EXPECT_EQ(h.cache->dirtyUnitCount(), 5u);
    EXPECT_EQ(h.cache->scrubDirtyLines(100), 5u);
    EXPECT_EQ(h.cache->dirtyUnitCount(), 0u);
    EXPECT_EQ(h.cache->scrubDirtyLines(10), 0u); // nothing left
    // Scrubbed lines stay resident.
    EXPECT_TRUE(h.cache->hasLine(0x0));
    EXPECT_EQ(h.cache->loadWord(0x20), 1ull);
}

TEST(Cache, ForEachValidRowSeesDirtyFlags)
{
    Harness h(smallGeometry(), parity());
    h.cache->storeWord(0x0, 1);
    unsigned valid = 0, dirty = 0;
    h.cache->forEachValidRow([&](Row, bool d) {
        ++valid;
        dirty += d ? 1 : 0;
    });
    EXPECT_EQ(valid, 4u); // one filled line of 4 units
    EXPECT_EQ(dirty, 1u);
}

} // namespace
} // namespace cppc
