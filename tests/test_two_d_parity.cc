#include <gtest/gtest.h>

#include <cstring>

#include "protection/two_d_parity.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

Harness
makeHarness()
{
    return Harness(smallGeometry(), std::make_unique<TwoDParityScheme>(8));
}

TwoDParityScheme *
scheme(Harness &h)
{
    return static_cast<TwoDParityScheme *>(h.cache->scheme());
}

TEST(Parity2D, VerticalInvariantUnderRandomTraffic)
{
    Harness h = makeHarness();
    Rng rng(61);
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.nextBelow(1024) * 8; // bigger than the cache
        if (rng.chance(0.5))
            h.cache->storeWord(a, rng.next());
        else
            h.cache->loadWord(a);
        if (i % 500 == 0) {
            EXPECT_EQ(scheme(h)->verticalParity(),
                      scheme(h)->recomputeVertical())
                << "iteration " << i;
        }
    }
    EXPECT_EQ(scheme(h)->verticalParity(), scheme(h)->recomputeVertical());
}

TEST(Parity2D, CorrectsSingleBitInDirtyWord)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0xabcdef);
    h.cache->storeWord(0x100, 0x123456); // more dirty data around
    h.cache->corruptBit(0, 21);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0xabcdefull);
    EXPECT_EQ(h.cache->scheme()->stats().corrected_dirty, 1u);
}

TEST(Parity2D, CorrectsMultiBitHorizontalFaultInOneWord)
{
    // Up to 8 adjacent flips in one word: horizontal parity detects,
    // the vertical row reconstructs.
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0x5555aaaa5555aaaaull);
    for (unsigned j = 8; j < 14; ++j)
        h.cache->corruptBit(0, j);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0x5555aaaa5555aaaaull);
}

TEST(Parity2D, CleanFaultRefetched)
{
    Harness h = makeHarness();
    uint8_t seed[8] = {7, 7, 7, 7, 7, 7, 7, 7};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 2);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
    EXPECT_EQ(h.cache->scheme()->stats().refetched_clean, 1u);
}

TEST(Parity2D, TwoFaultyDirtyRowsAreDue)
{
    // One vertical parity row (the paper's configuration) cannot
    // disentangle two faulty rows.
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 1);
    h.cache->storeWord(0x8, 2);
    h.cache->corruptBit(0, 0);
    h.cache->corruptBit(1, 5);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.due);
}

TEST(Parity2D, EveryStoreIsReadBeforeWrite)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 1); // miss fill + store
    auto out = h.cache->storeWord(0x8, 2);
    EXPECT_TRUE(out.rbw);
    // Two stores = two word RBWs (clean or dirty alike).
    EXPECT_EQ(h.cache->scheme()->stats().rbw_words, 2u);
}

TEST(Parity2D, MissFillsOverCleanVictimsChargeLineRbw)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<TwoDParityScheme>(8));
    auto out1 = h.cache->load(0x0, 8, nullptr); // cold fill
    EXPECT_TRUE(out1.fill_rbw);
    auto out2 = h.cache->load(0x0 + g.size_bytes, 8, nullptr);
    EXPECT_TRUE(out2.fill_rbw); // clean eviction
    EXPECT_EQ(h.cache->scheme()->stats().rbw_lines, 2u);
}

TEST(Parity2D, MissFillsOverDirtyVictimsDoNot)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<TwoDParityScheme>(8));
    h.cache->storeWord(0x0, 5); // line becomes dirty (fill charged once)
    uint64_t before = h.cache->scheme()->stats().rbw_lines;
    auto out = h.cache->load(0x0 + g.size_bytes, 8, nullptr);
    EXPECT_FALSE(out.fill_rbw); // dirty victim
    EXPECT_EQ(h.cache->scheme()->stats().rbw_lines, before);
}

TEST(Parity2D, VerticalSurvivesEvictionsAndRefills)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<TwoDParityScheme>(8));
    Rng rng(67);
    // Thrash two conflicting lines with dirty data.
    for (int i = 0; i < 200; ++i) {
        Addr a = (i % 2) ? 0x0 : 0x0 + g.size_bytes;
        h.cache->storeWord(a, rng.next());
    }
    EXPECT_EQ(scheme(h)->verticalParity(), scheme(h)->recomputeVertical());
}

TEST(Parity2D, CorrectionAfterManyEvictions)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<TwoDParityScheme>(8));
    Rng rng(71);
    for (int i = 0; i < 300; ++i)
        h.cache->storeWord(rng.nextBelow(256) * 8, rng.next());
    // Pick some dirty row and corrupt it.
    Row victim = 0;
    bool found = false;
    h.cache->forEachValidRow([&](Row r, bool dirty) {
        if (dirty && !found) {
            victim = r;
            found = true;
        }
    });
    ASSERT_TRUE(found);
    uint64_t good = h.cache->rowData(victim).toUint64();
    h.cache->corruptBit(victim, 33);
    Addr a = h.cache->rowAddr(victim);
    auto out = h.cache->load(a, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->rowData(victim).toUint64(), good);
}

TEST(Parity2D, CodeBitsIncludeVerticalRow)
{
    Harness h = makeHarness();
    EXPECT_EQ(h.cache->scheme()->codeBitsTotal(), 128u * 8 + 64u);
}

} // namespace
} // namespace cppc
