#include <gtest/gtest.h>

#include "cppc/barrel_shifter.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

TEST(BarrelShifter, RotationMatchesWideWord)
{
    BarrelShifter s(64);
    Rng rng(91);
    WideWord w = WideWord::random(rng, 8);
    for (unsigned k = 0; k < 8; ++k) {
        EXPECT_EQ(s.rotateLeft(w, k), w.rotatedLeft(k));
        EXPECT_EQ(s.rotateRight(s.rotateLeft(w, k), k), w);
    }
}

TEST(BarrelShifter, SimplifiedMuxCount)
{
    // Section 4.8: n/8 * log2(n/8) muxes in log2(n/8) stages.
    BarrelShifter s64(64);
    EXPECT_EQ(s64.cost().muxes, 8u * 3);
    EXPECT_EQ(s64.cost().stages, 3u);

    BarrelShifter s256(256);
    EXPECT_EQ(s256.cost().muxes, 32u * 5);
    EXPECT_EQ(s256.cost().stages, 5u);

    BarrelShifter s32(32);
    EXPECT_EQ(s32.cost().muxes, 4u * 2);
    EXPECT_EQ(s32.cost().stages, 2u);
}

TEST(BarrelShifter, ReferenceCalibrationPoint)
{
    // The paper's cited numbers: a 32-bit rotator at 90 nm takes
    // < 0.4 ns and about 1.5 pJ.
    BarrelShifter s(32, 90.0);
    EXPECT_NEAR(s.cost().delay_ns, 0.4, 1e-9);
    EXPECT_NEAR(s.cost().energy_pj, 1.5, 1e-9);
}

TEST(BarrelShifter, NotOnCriticalPathVsPaperCacheAccess)
{
    // Section 4.8 compares against CACTI's 0.78 ns access for an 8KB
    // direct-mapped cache at 90 nm: the shifter must be well under it.
    BarrelShifter s64(64, 90.0);
    EXPECT_LT(s64.cost().delay_ns, 0.78);
}

TEST(BarrelShifter, TechnologyScaling)
{
    BarrelShifter at90(64, 90.0);
    BarrelShifter at32(64, 32.0);
    EXPECT_LT(at32.cost().delay_ns, at90.cost().delay_ns);
    EXPECT_LT(at32.cost().energy_pj, at90.cost().energy_pj);
}

TEST(BarrelShifter, EnergyNegligibleVsCacheAccess)
{
    // Section 4.8: ~1.5 pJ vs ~240 pJ per cache access.
    BarrelShifter s(64, 90.0);
    EXPECT_LT(s.cost().energy_pj, 240.0 * 0.05);
}

TEST(BarrelShifter, RejectsBadWidths)
{
    EXPECT_THROW(BarrelShifter(7), FatalError);
    EXPECT_THROW(BarrelShifter(12), FatalError);
}

TEST(BarrelShifter, SingleByteWordIsFree)
{
    BarrelShifter s(8);
    EXPECT_EQ(s.cost().muxes, 0u);
    EXPECT_EQ(s.cost().stages, 0u);
    EXPECT_EQ(s.cost().delay_ns, 0.0);
}

} // namespace
} // namespace cppc
