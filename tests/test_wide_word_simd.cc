/**
 * @file
 * Differential suite pinning the lane/SIMD WideWord implementation to
 * a deliberately naive bit-at-a-time reference.
 *
 * The scalar path is the specification: whichever backend CMake
 * resolved (avx2, neon or scalar), every operation here must be
 * bit-identical to the reference model for every width 1..64 and every
 * parameter value — rotation amounts 0..width, every interleaving
 * degree k in 1..64, every digit size.  The CI scalar leg builds this
 * same suite with -DCPPC_SIMD=scalar, so the reference implementation
 * stays tested even on hosts that auto-detect a vector backend.
 *
 * The journal seal/unseal and fnv fast paths ride along: their on-disk
 * format is durable, so the word-at-a-time hash is pinned to a
 * byte-sequential reference too.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/journal.hh"
#include "util/fnv.hh"
#include "util/rng.hh"
#include "util/simd.hh"
#include "util/wide_word.hh"

using namespace cppc;

namespace {

/** Bit-vector reference model: one bool per bit, no cleverness. */
struct RefWord
{
    std::vector<bool> bits;

    explicit RefWord(unsigned n_bytes) : bits(n_bytes * 8, false) {}

    static RefWord
    of(const WideWord &w)
    {
        RefWord r(w.sizeBytes());
        for (unsigned j = 0; j < w.sizeBits(); ++j)
            r.bits[j] = w.bit(j);
        return r;
    }

    WideWord
    toWide() const
    {
        WideWord w(static_cast<unsigned>(bits.size() / 8));
        for (unsigned j = 0; j < bits.size(); ++j)
            w.setBit(j, bits[j]);
        return w;
    }

    RefWord
    rotatedLeftBits(unsigned n) const
    {
        unsigned width = static_cast<unsigned>(bits.size());
        n %= width;
        RefWord r(width / 8);
        // Result bit j == original bit (j + n) mod width.
        for (unsigned j = 0; j < width; ++j)
            r.bits[j] = bits[(j + n) % width];
        return r;
    }

    uint64_t
    interleavedParity(unsigned k) const
    {
        uint64_t p = 0;
        for (unsigned j = 0; j < bits.size(); ++j)
            if (bits[j])
                p ^= 1ull << (j % k);
        return p;
    }

    uint64_t
    digit(unsigned i, unsigned db) const
    {
        uint64_t v = 0;
        for (unsigned b = 0; b < db; ++b)
            if (bits[i * db + b])
                v |= 1ull << b;
        return v;
    }

    unsigned
    popcount() const
    {
        unsigned c = 0;
        for (bool b : bits)
            c += b ? 1 : 0;
        return c;
    }
};

class WideWordSimd : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(WideWordSimd, XorPopcountZeroEqualMatchReference)
{
    unsigned bytes = GetParam();
    Rng rng(0x5eed0000 + bytes);
    for (int iter = 0; iter < 20; ++iter) {
        WideWord a = WideWord::random(rng, bytes);
        WideWord b = WideWord::random(rng, bytes);
        RefWord ra = RefWord::of(a);
        RefWord rb = RefWord::of(b);

        WideWord x = a ^ b;
        RefWord rx(bytes);
        for (unsigned j = 0; j < bytes * 8; ++j)
            rx.bits[j] = ra.bits[j] != rb.bits[j];
        EXPECT_EQ(x, rx.toWide());
        EXPECT_EQ(x.popcount(), rx.popcount());

        EXPECT_EQ(a.popcount(), ra.popcount());
        EXPECT_EQ(a.isZero(), ra.popcount() == 0);
        EXPECT_TRUE(a == a);
        EXPECT_EQ(a == b, RefWord::of(a).bits == RefWord::of(b).bits);

        WideWord z = a ^ a;
        EXPECT_TRUE(z.isZero());
        EXPECT_EQ(z.popcount(), 0u);
    }
}

TEST_P(WideWordSimd, ByteRotationsAllAmountsMatchReference)
{
    unsigned bytes = GetParam();
    Rng rng(0x0520 + bytes);
    WideWord a = WideWord::random(rng, bytes);
    RefWord ra = RefWord::of(a);
    for (unsigned k = 0; k <= bytes; ++k) {
        WideWord got = a.rotatedLeft(k);
        WideWord want = ra.rotatedLeftBits(8 * (k % bytes)).toWide();
        EXPECT_EQ(got, want) << "rotatedLeft width=" << bytes
                             << " k=" << k;
        // rotatedRight must be the exact inverse.
        EXPECT_EQ(got.rotatedRight(k), a)
            << "rotatedRight width=" << bytes << " k=" << k;
    }
}

TEST_P(WideWordSimd, BitRotationsAllAmountsMatchReference)
{
    unsigned bytes = GetParam();
    Rng rng(0xb17 + bytes);
    WideWord a = WideWord::random(rng, bytes);
    RefWord ra = RefWord::of(a);
    for (unsigned n = 0; n <= bytes * 8; ++n) {
        WideWord got = a.rotatedLeftBits(n);
        WideWord want = ra.rotatedLeftBits(n).toWide();
        ASSERT_EQ(got, want)
            << "rotatedLeftBits width=" << bytes << " n=" << n;
        ASSERT_EQ(got.rotatedRightBits(n), a)
            << "rotatedRightBits width=" << bytes << " n=" << n;
    }
}

TEST_P(WideWordSimd, InterleavedParityAllDegreesMatchReference)
{
    unsigned bytes = GetParam();
    Rng rng(0x9a9 + bytes);
    for (int iter = 0; iter < 4; ++iter) {
        WideWord a = WideWord::random(rng, bytes);
        RefWord ra = RefWord::of(a);
        for (unsigned k = 1; k <= 64; ++k) {
            ASSERT_EQ(a.interleavedParity(k), ra.interleavedParity(k))
                << "interleavedParity width=" << bytes << " k=" << k;
        }
        EXPECT_EQ(a.parity(), ra.popcount() & 1u);
    }
}

TEST_P(WideWordSimd, DigitExtractInsertMatchReference)
{
    unsigned bytes = GetParam();
    Rng rng(0xd161 + bytes);
    WideWord a = WideWord::random(rng, bytes);
    for (unsigned db = 1; db <= 32; ++db) {
        unsigned n_digits = bytes * 8 / db;
        RefWord ra = RefWord::of(a);
        for (unsigned i = 0; i < n_digits; ++i) {
            ASSERT_EQ(a.digit(i, db), ra.digit(i, db))
                << "digit width=" << bytes << " db=" << db
                << " i=" << i;
        }
        // Round-trip: setDigit(digit()) is the identity ...
        WideWord b = a;
        for (unsigned i = 0; i < n_digits; ++i)
            b.setDigit(i, db, a.digit(i, db));
        ASSERT_EQ(b, a) << "identity width=" << bytes << " db=" << db;
        // ... and inserting fresh values reads back exactly.
        WideWord c = a;
        Rng vals(0xc0ffee ^ db);
        std::vector<uint32_t> want;
        for (unsigned i = 0; i < n_digits; ++i) {
            uint32_t v = static_cast<uint32_t>(vals.next()) &
                static_cast<uint32_t>((1ull << db) - 1);
            want.push_back(v);
            c.setDigit(i, db, v);
        }
        for (unsigned i = 0; i < n_digits; ++i)
            ASSERT_EQ(c.digit(i, db), want[i])
                << "readback width=" << bytes << " db=" << db
                << " i=" << i;
    }
}

TEST_P(WideWordSimd, ByteAndUintViewsMatchReference)
{
    unsigned bytes = GetParam();
    Rng rng(0xbeef + bytes);
    WideWord a = WideWord::random(rng, bytes);

    // byte(i) agrees with the bit view.
    RefWord ra = RefWord::of(a);
    for (unsigned i = 0; i < bytes; ++i) {
        uint8_t want = 0;
        for (unsigned b = 0; b < 8; ++b)
            if (ra.bits[i * 8 + b])
                want |= static_cast<uint8_t>(1u << b);
        ASSERT_EQ(a.byte(i), want) << "byte " << i;
    }

    // to/from bytes round-trips.
    std::vector<uint8_t> buf(bytes);
    a.toBytes(buf.data());
    EXPECT_EQ(WideWord::fromBytes(buf.data(), bytes), a);

    // fromUint64 masks to the width.
    if (bytes <= 8) {
        uint64_t v = 0x0123456789abcdefull;
        WideWord w = WideWord::fromUint64(v, bytes);
        uint64_t mask = bytes == 8
            ? ~0ull
            : ((1ull << (8 * bytes)) - 1);
        EXPECT_EQ(w.toUint64(), v & mask);
    }

    // The tail-zero invariant: bits at or beyond sizeBits() stay zero
    // through every mutating operation.
    WideWord t = a.rotatedLeftBits(5);
    t ^= a;
    t.setBit(0, true);
    for (unsigned wi = 0; wi < WideWord::kMaxWords; ++wi) {
        uint64_t lane = t.word(wi);
        for (unsigned b = 0; b < 64; ++b) {
            unsigned j = wi * 64 + b;
            if (j >= t.sizeBits()) {
                ASSERT_EQ((lane >> b) & 1, 0u)
                    << "tail bit " << j << " set at width " << bytes;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, WideWordSimd,
                         ::testing::Range(1u, 65u));

TEST(SimdBackend, ReportsAName)
{
    std::string name = simd::backendName();
    EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar")
        << name;
}

// --- fnv fast path vs byte-sequential reference ----------------------

uint32_t
refFnv1a32(const std::string &s)
{
    uint32_t h = 2166136261u;
    for (unsigned char c : s) {
        h ^= c;
        h *= 16777619u;
    }
    return h;
}

uint64_t
refFnv1a64(const std::string &s)
{
    uint64_t h = 14695981039346656037ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

TEST(FnvFastPath, MatchesByteReferenceAtAllLengths)
{
    Rng rng(0xf17);
    std::string s;
    for (unsigned len = 0; len <= 129; ++len) {
        EXPECT_EQ(fnv1a32(s), refFnv1a32(s)) << "len " << len;
        EXPECT_EQ(fnv1a64(s), refFnv1a64(s)) << "len " << len;
        s.push_back(static_cast<char>(rng.next()));
    }
}

TEST(JournalSeal, RoundTripsAndDetectsCorruption)
{
    const std::string body = "cell k ok 1 payload";
    std::string line = journalSealLine(body);
    // The on-disk format is durable: exactly " crc=" + 8 hex digits.
    ASSERT_EQ(line.size(), body.size() + 5 + 8);
    EXPECT_EQ(line.compare(0, body.size(), body), 0);
    EXPECT_EQ(line.substr(body.size(), 5), " crc=");

    std::string out;
    EXPECT_TRUE(journalUnsealLine(line, out));
    EXPECT_EQ(out, body);

    // Any single-character corruption must be caught.
    for (size_t i = 0; i < line.size(); ++i) {
        std::string bad = line;
        bad[i] = bad[i] == 'x' ? 'y' : 'x';
        EXPECT_FALSE(journalUnsealLine(bad, out)) << "position " << i;
    }
}

TEST(JournalSeal, CrcIsTheFormatsFnv1a32)
{
    // Pin the sealed CRC to the reference hash so the fast path can
    // never silently fork the journal format.
    const std::string body = "cppc-journal v1 sweep 00000000deadbeef";
    std::string line = journalSealLine(body);
    char want[16];
    std::snprintf(want, sizeof(want), "%08x", refFnv1a32(body));
    EXPECT_EQ(line.substr(line.size() - 8), want);
}

} // namespace
