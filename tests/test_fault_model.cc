#include <gtest/gtest.h>

#include <set>

#include "fault/fault_model.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

TEST(StrikeShape, Label)
{
    StrikeShape s{3, 5, 0.5};
    EXPECT_EQ(s.label(), "3x5@0.50");
}

TEST(ShapeDistribution, SingleBitOnly)
{
    auto d = StrikeShapeDistribution::singleBitOnly();
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const StrikeShape &s = d.sample(rng);
        EXPECT_EQ(s.rows, 1u);
        EXPECT_EQ(s.bit_cols, 1u);
    }
}

TEST(ShapeDistribution, SamplingFollowsWeights)
{
    StrikeShapeDistribution d;
    d.add({1, 1, 1.0}, 9.0);
    d.add({2, 2, 1.0}, 1.0);
    Rng rng(2);
    unsigned big = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (d.sample(rng).rows == 2)
            ++big;
    EXPECT_NEAR(static_cast<double>(big) / n, 0.1, 0.02);
}

TEST(ShapeDistribution, TechnologyMixExtremes)
{
    auto none = StrikeShapeDistribution::scaledTechnologyMix(0.0);
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(none.sample(rng).rows * none.sample(rng).bit_cols, 1u);

    auto all = StrikeShapeDistribution::scaledTechnologyMix(1.0);
    bool saw_multi = false;
    for (int i = 0; i < 50; ++i) {
        const StrikeShape &s = all.sample(rng);
        EXPECT_GT(s.rows * s.bit_cols, 1u);
        saw_multi = true;
    }
    EXPECT_TRUE(saw_multi);
}

TEST(ShapeDistribution, MixWithinEnvelope)
{
    auto d = StrikeShapeDistribution::scaledTechnologyMix(0.8);
    Rng rng(4);
    for (int i = 0; i < 500; ++i) {
        const StrikeShape &s = d.sample(rng);
        EXPECT_LE(s.rows, 8u);
        EXPECT_LE(s.bit_cols, 8u);
    }
}

TEST(ShapeDistribution, RejectsBadInputs)
{
    StrikeShapeDistribution d;
    EXPECT_THROW(d.add({1, 1, 1.0}, 0.0), FatalError);
    Rng rng(5);
    EXPECT_THROW(d.sample(rng), FatalError);
    EXPECT_THROW(StrikeShapeDistribution::scaledTechnologyMix(1.5),
                 FatalError);
}

TEST(StrikePlacer, PlacementStaysInBounds)
{
    StrikePlacer placer(100, 64);
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        Strike s = placer.place({4, 6, 1.0}, rng);
        EXPECT_EQ(s.bits.size(), 24u);
        for (const FaultBit &fb : s.bits) {
            EXPECT_LT(fb.row, 100u);
            EXPECT_LT(fb.bit, 64u);
        }
    }
}

TEST(StrikePlacer, DenseRectangleShape)
{
    StrikePlacer placer(16, 64);
    Rng rng(7);
    Strike s = placer.placeAt({3, 4, 1.0}, 5, 10, rng);
    std::set<std::pair<Row, unsigned>> cells;
    for (const FaultBit &fb : s.bits)
        cells.insert({fb.row, fb.bit});
    EXPECT_EQ(cells.size(), 12u);
    for (Row r = 5; r < 8; ++r)
        for (unsigned c = 10; c < 14; ++c)
            EXPECT_TRUE(cells.count({r, c}));
}

TEST(StrikePlacer, SparseDensityThinsOut)
{
    StrikePlacer placer(64, 64);
    Rng rng(8);
    uint64_t total = 0;
    for (int i = 0; i < 200; ++i)
        total += placer.place({8, 8, 0.5}, rng).bits.size();
    double mean = static_cast<double>(total) / 200.0;
    EXPECT_GT(mean, 24.0);
    EXPECT_LT(mean, 40.0); // ~32 expected
}

TEST(StrikePlacer, NeverEmpty)
{
    StrikePlacer placer(8, 64);
    Rng rng(9);
    for (int i = 0; i < 200; ++i)
        EXPECT_GE(placer.place({2, 2, 0.01}, rng).bits.size(), 1u);
}

TEST(StrikePlacer, OversizedShapeRejected)
{
    StrikePlacer placer(4, 64);
    Rng rng(10);
    EXPECT_THROW(placer.place({8, 8, 1.0}, rng), FatalError);
}

TEST(StrikePlacer, CoversWholeArray)
{
    StrikePlacer placer(32, 64);
    Rng rng(11);
    std::set<Row> rows;
    for (int i = 0; i < 3000; ++i)
        rows.insert(placer.place({1, 1, 1.0}, rng).bits[0].row);
    EXPECT_EQ(rows.size(), 32u);
}

} // namespace
} // namespace cppc
