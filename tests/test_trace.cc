#include <gtest/gtest.h>

#include <set>

#include "trace/trace.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

TEST(Profiles, FifteenSpec2000Names)
{
    const auto &ps = spec2000Profiles();
    EXPECT_EQ(ps.size(), 15u);
    std::set<std::string> names;
    for (const auto &p : ps)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 15u);
    for (const char *expect :
         {"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "perlbmk",
          "gap", "vortex", "bzip2", "twolf", "swim", "mgrid", "applu",
          "art"})
        EXPECT_TRUE(names.count(expect)) << expect;
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(profileByName("mcf").name, "mcf");
    EXPECT_THROW(profileByName("doom"), FatalError);
}

TEST(Profiles, SaneParameters)
{
    for (const auto &p : spec2000Profiles()) {
        EXPECT_GT(p.load_frac, 0.0);
        EXPECT_GT(p.store_frac, 0.0);
        EXPECT_LT(p.load_frac + p.store_frac, 1.0) << p.name;
        EXPECT_LE(p.stride_frac + p.chase_frac, 1.0) << p.name;
        EXPECT_GE(p.hot_bytes, 8u << 10) << p.name;
        EXPECT_GE(p.warm_bytes, p.hot_bytes) << p.name;
        EXPECT_GE(p.cold_bytes, p.warm_bytes) << p.name;
    }
}

TEST(Generator, Deterministic)
{
    const auto &p = profileByName("gcc");
    TraceGenerator a(p, 7), b(p, 7);
    for (int i = 0; i < 2000; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.op, rb.op);
        EXPECT_EQ(ra.addr, rb.addr);
    }
}

TEST(Generator, SeedsDiffer)
{
    const auto &p = profileByName("gcc");
    TraceGenerator a(p, 7), b(p, 8);
    int same = 0;
    for (int i = 0; i < 500; ++i)
        if (a.next().addr == b.next().addr)
            ++same;
    EXPECT_LT(same, 400);
}

TEST(Generator, InstructionMixMatchesProfile)
{
    const auto &p = profileByName("vortex");
    TraceGenerator gen(p, 1);
    uint64_t loads = 0, stores = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        TraceRecord r = gen.next();
        loads += r.op == Op::Load;
        stores += r.op == Op::Store;
    }
    EXPECT_NEAR(static_cast<double>(loads) / n, p.load_frac, 0.01);
    EXPECT_NEAR(static_cast<double>(stores) / n, p.store_frac, 0.01);
}

TEST(Generator, AddressesWordAlignedAndInFootprint)
{
    const auto &p = profileByName("swim");
    TraceGenerator gen(p, 2);
    for (int i = 0; i < 50000; ++i) {
        TraceRecord r = gen.next();
        if (r.op == Op::Alu)
            continue;
        EXPECT_EQ(r.addr % 8, 0u);
        EXPECT_LT(r.addr, p.cold_bytes);
    }
}

TEST(Generator, McfChasesPointers)
{
    // mcf must touch far more distinct lines than a cache-resident
    // benchmark: that's where its L2 misses come from.
    auto distinct_lines = [](const char *name) {
        TraceGenerator gen(profileByName(name), 3);
        std::set<Addr> lines;
        for (int i = 0; i < 200000; ++i) {
            TraceRecord r = gen.next();
            if (r.op != Op::Alu)
                lines.insert(r.addr / 32);
        }
        return lines.size();
    };
    EXPECT_GT(distinct_lines("mcf"), 4 * distinct_lines("crafty"));
}

TEST(Generator, StoreOverwritesCreateDirtyReuse)
{
    // A benchmark with high overwrite bias revisits stored words.
    const auto &p = profileByName("gcc");
    TraceGenerator gen(p, 4);
    std::set<Addr> stored;
    uint64_t revisits = 0, stores = 0;
    for (int i = 0; i < 200000; ++i) {
        TraceRecord r = gen.next();
        if (r.op != Op::Store)
            continue;
        ++stores;
        if (!stored.insert(r.addr).second)
            ++revisits;
    }
    EXPECT_GT(static_cast<double>(revisits) / static_cast<double>(stores),
              0.3);
}

TEST(Generator, StreamingProfilesStride)
{
    // swim's stride fraction shows up as sequential next-word accesses.
    TraceGenerator gen(profileByName("swim"), 5);
    Addr prev = 0;
    uint64_t sequential = 0, mem_ops = 0;
    for (int i = 0; i < 100000; ++i) {
        TraceRecord r = gen.next();
        if (r.op == Op::Alu)
            continue;
        ++mem_ops;
        if (r.addr == prev + 8)
            ++sequential;
        prev = r.addr;
    }
    EXPECT_GT(static_cast<double>(sequential) /
                  static_cast<double>(mem_ops),
              0.4);
}

} // namespace
} // namespace cppc
