#include <gtest/gtest.h>

#include <cmath>

#include "reliability/mttf_model.hh"
#include "sim/paper_config.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

// Table 1 / Table 2 constants as the paper reports them.
constexpr uint64_t kL1Bits = 32ull * 1024 * 8;
constexpr uint64_t kL2Bits = 1024ull * 1024 * 8;
constexpr double kL1Dirty = 0.16;
constexpr double kL2Dirty = 0.35;
constexpr double kL1Tavg = 1828.0;
constexpr double kL2Tavg = 378997.0;

bool
within(double x, double ref, double factor)
{
    return x > ref / factor && x < ref * factor;
}

TEST(Mttf, Table3ParityRows)
{
    MttfModel m;
    EXPECT_TRUE(within(m.parityMttfYears(kL1Bits, kL1Dirty), 4490.0, 2.0));
    EXPECT_TRUE(within(m.parityMttfYears(kL2Bits, kL2Dirty), 64.0, 2.0));
}

TEST(Mttf, Table3CppcRows)
{
    MttfModel m;
    double l1 = m.cppcMttfYears(kL1Bits, kL1Dirty, 8, 1, 1, kL1Tavg);
    double l2 = m.cppcMttfYears(kL2Bits, kL2Dirty, 8, 1, 1, kL2Tavg);
    EXPECT_TRUE(within(l1, 8.02e21, 5.0)) << l1;
    EXPECT_TRUE(within(l2, 8.07e15, 5.0)) << l2;
}

TEST(Mttf, Table3SecdedRows)
{
    MttfModel m;
    double l1 = m.secdedMttfYears(kL1Bits, kL1Dirty, 64, kL1Tavg);
    double l2 = m.secdedMttfYears(kL2Bits, kL2Dirty, 256, kL2Tavg);
    EXPECT_TRUE(within(l1, 6.2e23, 5.0)) << l1;
    EXPECT_TRUE(within(l2, 1.1e19, 5.0)) << l2;
}

TEST(Mttf, OrderingParityCppcSecded)
{
    MttfModel m;
    double p = m.parityMttfYears(kL1Bits, kL1Dirty);
    double c = m.cppcMttfYears(kL1Bits, kL1Dirty, 8, 1, 1, kL1Tavg);
    double s = m.secdedMttfYears(kL1Bits, kL1Dirty, 64, kL1Tavg);
    EXPECT_LT(p, c);
    EXPECT_LT(c, s);
}

TEST(Mttf, AliasingFigureSection47)
{
    MttfModel m;
    double alias = m.aliasingMttfYears(kL2Bits, kL2Dirty, 7, kL2Tavg);
    EXPECT_TRUE(within(alias, 4.19e20, 5.0)) << alias;
    // "5 orders of magnitude larger than DUEs due to temporal 2-bit
    // faults" — at least a factor of 10^4 in our calibration.
    double cppc = m.cppcMttfYears(kL2Bits, kL2Dirty, 8, 1, 1, kL2Tavg);
    EXPECT_GT(alias / cppc, 1e4);
}

TEST(Mttf, DomainScalingDoublesReliability)
{
    // Section 3.4: halving the protection-domain size doubles MTTF.
    MttfModel m;
    double one = m.cppcMttfYears(kL2Bits, kL2Dirty, 8, 1, 1, kL2Tavg);
    double two = m.cppcMttfYears(kL2Bits, kL2Dirty, 8, 2, 1, kL2Tavg);
    double four_dom = m.cppcMttfYears(kL2Bits, kL2Dirty, 8, 1, 4, kL2Tavg);
    EXPECT_NEAR(two / one, 2.0, 1e-6);
    EXPECT_NEAR(four_dom / one, 4.0, 1e-6);
}

TEST(Mttf, MoreParityBitsScaleTheSameWay)
{
    MttfModel m;
    double k8 = m.cppcMttfYears(kL1Bits, kL1Dirty, 8, 1, 1, kL1Tavg);
    double k16 = m.cppcMttfYears(kL1Bits, kL1Dirty, 16, 1, 1, kL1Tavg);
    EXPECT_NEAR(k16 / k8, 2.0, 1e-6);
}

TEST(Mttf, ShorterWindowImprovesMttf)
{
    MttfModel m;
    double slow = m.cppcMttfYears(kL1Bits, kL1Dirty, 8, 1, 1, 10000.0);
    double fast = m.cppcMttfYears(kL1Bits, kL1Dirty, 8, 1, 1, 100.0);
    EXPECT_GT(fast, slow);
    // P ~ (lambda*T)^2 per interval but there are 1/T intervals per
    // unit time: MTTF ~ 1/T overall.
    EXPECT_NEAR(fast / slow, 100.0, 1.0);
}

TEST(Mttf, HigherFitRateHurtsQuadratically)
{
    ReliabilityParams hot;
    hot.fit_per_bit = 0.01; // 10x the default
    MttfModel base, worse(hot);
    double b = base.cppcMttfYears(kL1Bits, kL1Dirty, 8, 1, 1, kL1Tavg);
    double w = worse.cppcMttfYears(kL1Bits, kL1Dirty, 8, 1, 1, kL1Tavg);
    EXPECT_NEAR(b / w, 100.0, 1.0);
    // Parity (single-fault) degrades only linearly.
    double pb = base.parityMttfYears(kL1Bits, kL1Dirty);
    double pw = worse.parityMttfYears(kL1Bits, kL1Dirty);
    EXPECT_NEAR(pb / pw, 10.0, 1e-6);
}

TEST(Mttf, ProbTwoOrMoreNumericallyRobust)
{
    // Tiny means must not underflow to zero MTT= inf mistakes.
    MttfModel m;
    double v = m.doubleFaultMttfYears(1.0, 1.0, 1.0);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_GT(v, 1e30); // absurdly reliable, but finite
}

TEST(Mttf, RejectsBadInputs)
{
    MttfModel m;
    EXPECT_THROW(m.parityMttfYears(0, 0.5), FatalError);
    EXPECT_THROW(m.doubleFaultMttfYears(0.0, 1.0, 1.0), FatalError);
    EXPECT_THROW(m.doubleFaultMttfYears(1.0, 1.0, 0.0), FatalError);
}

TEST(Mttf, HoursConversion)
{
    MttfModel m;
    // 3 GHz: 1.08e13 cycles per hour.
    EXPECT_NEAR(m.hoursOf(3e9 * 3600.0), 1.0, 1e-9);
}

} // namespace
} // namespace cppc
