#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace cppc {
namespace {

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, SubmitVoidTasks)
{
    std::atomic<int> counter{0};
    ThreadPool pool(3);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("worker failed"); });
    EXPECT_EQ(ok.get(), 7);
    try {
        bad.get();
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker failed");
    }
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(1); // single worker: tasks queue up behind it
        for (int i = 0; i < 50; ++i)
            futs.push_back(pool.submit([&ran] { ++ran; }));
        // Destructor must complete every queued task, not drop them.
    }
    EXPECT_EQ(ran.load(), 50);
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
}

/** Save/restore CPPC_BENCH_JOBS around a test body. */
class ScopedJobsEnv
{
  public:
    ScopedJobsEnv()
    {
        const char *saved = std::getenv("CPPC_BENCH_JOBS");
        had_ = saved != nullptr;
        value_ = saved ? saved : "";
    }
    ~ScopedJobsEnv()
    {
        if (had_)
            setenv("CPPC_BENCH_JOBS", value_.c_str(), 1);
        else
            unsetenv("CPPC_BENCH_JOBS");
    }

  private:
    bool had_;
    std::string value_;
};

TEST(ThreadPool, ParseWorkerCountAcceptsPlainDecimals)
{
    EXPECT_EQ(ThreadPool::parseWorkerCount("1", "test"), 1u);
    EXPECT_EQ(ThreadPool::parseWorkerCount("8", "test"), 8u);
    // Modest oversubscription is legitimate (CI containers routinely
    // run --jobs=3 on one core); the ceiling is kMaxWorkers, not
    // hardware_concurrency().
    EXPECT_EQ(ThreadPool::parseWorkerCount("256", "test"),
              ThreadPool::kMaxWorkers);
}

TEST(ThreadPool, ParseWorkerCountRejectsZero)
{
    EXPECT_THROW(ThreadPool::parseWorkerCount("0", "test"), FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount("00", "test"), FatalError);
}

TEST(ThreadPool, ParseWorkerCountRejectsSignsAndGarbage)
{
    // Rejected, never silently clamped or wrapped.
    EXPECT_THROW(ThreadPool::parseWorkerCount("-2", "test"), FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount("+4", "test"), FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount("abc", "test"),
                 FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount("3x", "test"), FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount("", "test"), FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount(" 4", "test"), FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount("4 ", "test"), FatalError);
    EXPECT_THROW(ThreadPool::parseWorkerCount("true", "test"),
                 FatalError);
}

TEST(ThreadPool, ParseWorkerCountRejectsAbsurdCounts)
{
    EXPECT_THROW(ThreadPool::parseWorkerCount("257", "test"),
                 FatalError);
    // Values far past any uint64 overflow point still fail cleanly.
    EXPECT_THROW(
        ThreadPool::parseWorkerCount("99999999999999999999999", "test"),
        FatalError);
}

TEST(ThreadPool, DefaultWorkerCountHonoursEnv)
{
    ScopedJobsEnv guard;

    setenv("CPPC_BENCH_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultWorkerCount(), 3u);
    unsetenv("CPPC_BENCH_JOBS");
    EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

TEST(ThreadPool, DefaultWorkerCountRejectsMalformedEnv)
{
    ScopedJobsEnv guard;

    // A malformed CPPC_BENCH_JOBS is a loud configuration error, not
    // a silent clamp to one worker.
    setenv("CPPC_BENCH_JOBS", "0", 1);
    EXPECT_THROW(ThreadPool::defaultWorkerCount(), FatalError);
    setenv("CPPC_BENCH_JOBS", "-1", 1);
    EXPECT_THROW(ThreadPool::defaultWorkerCount(), FatalError);
    setenv("CPPC_BENCH_JOBS", "lots", 1);
    EXPECT_THROW(ThreadPool::defaultWorkerCount(), FatalError);
    setenv("CPPC_BENCH_JOBS", "1024", 1);
    EXPECT_THROW(ThreadPool::defaultWorkerCount(), FatalError);
}

TEST(ThreadPool, DetachedRunTasksExecute)
{
    std::atomic<int> ran{0};
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i)
        pool.run([&ran] { ++ran; });
    pool.drain();
    EXPECT_EQ(ran.load(), 64);
}

// Regression: an exception escaping a detached run() task used to
// propagate out of the worker thread (std::terminate, tearing down the
// whole process).  Now the first exception is latched and rethrown at
// the drain() join point, and the pool stays usable afterwards.
TEST(ThreadPool, DetachedExceptionRethrownAtDrain)
{
    ThreadPool pool(2);
    pool.run([] { throw std::runtime_error("detached failure"); });
    try {
        pool.drain();
        FAIL() << "expected runtime_error from drain()";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "detached failure");
    }
    // The error was collected: the next drain() is clean and the pool
    // still runs work.
    std::atomic<int> ran{0};
    pool.run([&ran] { ++ran; });
    EXPECT_NO_THROW(pool.drain());
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, DetachedExceptionCancelsQueuedWork)
{
    std::atomic<int> ran{0};
    ThreadPool pool(1); // single worker: everything queues behind it
    pool.run([] { throw std::runtime_error("first failure"); });
    for (int i = 0; i < 100; ++i)
        pool.run([&ran] { ++ran; });
    EXPECT_THROW(pool.drain(), std::runtime_error);
    // The failing task cancelled the work queued behind it; at most
    // the task already dequeued before the cancel ran.
    EXPECT_LE(ran.load(), 1);
}

TEST(ThreadPool, FirstDetachedExceptionWins)
{
    ThreadPool pool(1);
    pool.run([] { throw std::runtime_error("first"); });
    pool.run([] { throw std::runtime_error("second"); });
    try {
        pool.drain();
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(ThreadPool, CancelPendingDropsQueuedSubmits)
{
    std::atomic<bool> started{false};
    std::atomic<bool> release{false};
    std::atomic<int> ran{0};
    ThreadPool pool(1);
    auto blocker = pool.submit([&started, &release] {
        started.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    // Wait for the worker to dequeue the blocker, so cancelPending()
    // below can only ever see the tasks queued behind it.
    while (!started.load())
        std::this_thread::yield();
    std::vector<std::future<void>> queued;
    for (int i = 0; i < 20; ++i)
        queued.push_back(pool.submit([&ran] { ++ran; }));
    pool.cancelPending();
    release.store(true);
    blocker.get();
    pool.drain();
    EXPECT_EQ(ran.load(), 0);
    // A dropped submit() future reports broken_promise rather than
    // hanging its consumer.
    for (auto &f : queued)
        EXPECT_THROW(f.get(), std::future_error);
}

TEST(ThreadPool, ZeroWorkersMeansDefault)
{
    const char *saved = std::getenv("CPPC_BENCH_JOBS");
    std::string saved_value = saved ? saved : "";
    setenv("CPPC_BENCH_JOBS", "2", 1);
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 2u);
    if (saved)
        setenv("CPPC_BENCH_JOBS", saved_value.c_str(), 1);
    else
        unsetenv("CPPC_BENCH_JOBS");
}

// The tests below target the work-stealing scheduler specifically:
// tasks land in per-worker rings and idle workers steal from peers, so
// completion must be total no matter which ring a task was routed to.

TEST(ThreadPool, ConcurrentSubmittersAllTasksComplete)
{
    // Many external producers against the MPMC rings at once; every
    // increment must land exactly once regardless of which worker's
    // ring accepted it or who stole it.
    std::atomic<int> ran{0};
    constexpr int kSubmitters = 4, kPerSubmitter = 2'000;
    {
        ThreadPool pool(4);
        std::vector<std::thread> submitters;
        for (int s = 0; s < kSubmitters; ++s) {
            submitters.emplace_back([&pool, &ran] {
                for (int i = 0; i < kPerSubmitter; ++i)
                    pool.run([&ran] {
                        ran.fetch_add(1, std::memory_order_relaxed);
                    });
            });
        }
        for (auto &t : submitters)
            t.join();
        pool.drain();
    }
    EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
}

TEST(ThreadPool, OverflowSpillsPastRingCapacity)
{
    // A single blocked worker while thousands of tasks queue: far more
    // than one bounded ring holds, so the overflow spill path must
    // carry the excess and the worker must drain both after release.
    std::atomic<bool> release{false};
    std::atomic<bool> started{false};
    std::atomic<int> ran{0};
    ThreadPool pool(1);
    pool.run([&started, &release] {
        started.store(true);
        while (!release.load())
            std::this_thread::yield();
    });
    while (!started.load())
        std::this_thread::yield();
    constexpr int kTasks = 4'096; // ring capacity is far smaller
    for (int i = 0; i < kTasks; ++i)
        pool.run([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    release.store(true);
    pool.drain();
    EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, IdleWorkersStealFromBusyPeers)
{
    // One long task occupies whichever worker dequeued it; the quick
    // tasks routed to that worker's ring must be stolen and finished
    // by its idle peers long before the long task ends.
    std::atomic<bool> release{false};
    std::atomic<int> quick_ran{0};
    ThreadPool pool(4);
    pool.run([&release] {
        while (!release.load())
            std::this_thread::yield();
    });
    for (int i = 0; i < 256; ++i)
        pool.run([&quick_ran] {
            quick_ran.fetch_add(1, std::memory_order_relaxed);
        });
    // Wait for the quick tasks without draining (the blocker is still
    // running); stalling out the deadline means stealing is broken.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (quick_ran.load() < 256 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    EXPECT_EQ(quick_ran.load(), 256)
        << "idle workers failed to steal from the blocked worker's ring";
    release.store(true);
    pool.drain();
}

} // namespace
} // namespace cppc
