#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hh"

namespace cppc {
namespace {

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 100; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPool, SubmitVoidTasks)
{
    std::atomic<int> counter{0};
    ThreadPool pool(3);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([&counter] { ++counter; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("worker failed"); });
    EXPECT_EQ(ok.get(), 7);
    try {
        bad.get();
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker failed");
    }
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(1); // single worker: tasks queue up behind it
        for (int i = 0; i < 50; ++i)
            futs.push_back(pool.submit([&ran] { ++ran; }));
        // Destructor must complete every queued task, not drop them.
    }
    EXPECT_EQ(ran.load(), 50);
    for (auto &f : futs)
        EXPECT_NO_THROW(f.get());
}

TEST(ThreadPool, DefaultWorkerCountHonoursEnv)
{
    const char *saved = std::getenv("CPPC_BENCH_JOBS");
    std::string saved_value = saved ? saved : "";

    setenv("CPPC_BENCH_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultWorkerCount(), 3u);
    setenv("CPPC_BENCH_JOBS", "0", 1); // nonsense clamps to 1
    EXPECT_EQ(ThreadPool::defaultWorkerCount(), 1u);
    unsetenv("CPPC_BENCH_JOBS");
    EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);

    if (saved)
        setenv("CPPC_BENCH_JOBS", saved_value.c_str(), 1);
}

TEST(ThreadPool, ZeroWorkersMeansDefault)
{
    const char *saved = std::getenv("CPPC_BENCH_JOBS");
    std::string saved_value = saved ? saved : "";
    setenv("CPPC_BENCH_JOBS", "2", 1);
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 2u);
    if (saved)
        setenv("CPPC_BENCH_JOBS", saved_value.c_str(), 1);
    else
        unsetenv("CPPC_BENCH_JOBS");
}

} // namespace
} // namespace cppc
