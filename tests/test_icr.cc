#include <gtest/gtest.h>

#include "protection/icr.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

IcrScheme *
scheme(Harness &h)
{
    return static_cast<IcrScheme *>(h.cache->scheme());
}

TEST(Icr, ReplicaPairing)
{
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    // 128 rows: peer halves are 64 apart, and pairing is symmetric.
    EXPECT_EQ(scheme(h)->replicaRowOf(0), 64u);
    EXPECT_EQ(scheme(h)->replicaRowOf(64), 0u);
    EXPECT_EQ(scheme(h)->replicaRowOf(127), 63u);
}

TEST(Icr, DirtyFaultRecoversFromReplica)
{
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    h.cache->storeWord(0x0, 0x1234);
    h.cache->corruptBit(0, 9);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0x1234ull);
    EXPECT_EQ(scheme(h)->replicaWrites(), 1u);
}

TEST(Icr, CleanFaultRefetched)
{
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    uint8_t seed[8] = {9, 8, 7, 6, 5, 4, 3, 2};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 3);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
}

TEST(Icr, PeerConflictLeavesDirtyDataUnprotected)
{
    // The coverage hole the paper criticises: when the replica slot
    // holds live dirty data, the new dirty word is unprotected.
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    Addr peer_addr = h.addrOfRow(64);
    h.cache->storeWord(peer_addr, 0xAAAA); // peer slot dirty
    h.cache->storeWord(0x0, 0xBBBB);       // cannot replicate
    EXPECT_EQ(scheme(h)->unprotectedStores(), 1u);
    h.cache->corruptBit(0, 5);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.due);
}

TEST(Icr, StoreDisplacesPeerReplica)
{
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    h.cache->storeWord(0x0, 0x1111); // replicated into row 64's slot
    EXPECT_TRUE(scheme(h)->holdsReplica(0));
    Addr peer_addr = h.addrOfRow(64);
    h.cache->storeWord(peer_addr, 0x2222); // dirty data takes the slot
    EXPECT_FALSE(scheme(h)->holdsReplica(0));
    // Row 0's dirty data is now exposed.
    h.cache->corruptBit(0, 2);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.due);
}

TEST(Icr, ReplicaRefreshedByOverwrites)
{
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    h.cache->storeWord(0x0, 1);
    h.cache->storeWord(0x0, 2);
    h.cache->storeWord(0x0, 3);
    EXPECT_EQ(scheme(h)->replicaWrites(), 3u);
    h.cache->corruptBit(0, 40);
    h.cache->load(0x0, 8, nullptr);
    EXPECT_EQ(h.cache->loadWord(0x0), 3ull);
}

TEST(Icr, RandomTrafficNoFalseDetections)
{
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    Rng rng(41);
    for (int i = 0; i < 4000; ++i) {
        Addr a = rng.nextBelow(512) * 8;
        if (rng.chance(0.5))
            h.cache->storeWord(a, rng.next());
        else
            h.cache->loadWord(a);
    }
    EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
    EXPECT_GT(scheme(h)->replicaWrites(), 0u);
}

TEST(Icr, CoverageDependsOnDirtyPressure)
{
    // More dirty data -> more peer conflicts -> more unprotected
    // stores (the locality trade-off).
    auto unprotected_rate = [&](double store_prob) {
        Harness h(smallGeometry(), std::make_unique<IcrScheme>());
        Rng rng(43);
        uint64_t stores = 0;
        for (int i = 0; i < 6000; ++i) {
            Addr a = rng.nextBelow(128) * 8; // exactly the cache size
            if (rng.chance(store_prob)) {
                h.cache->storeWord(a, rng.next());
                ++stores;
            } else {
                h.cache->loadWord(a);
            }
        }
        return static_cast<double>(scheme(h)->unprotectedStores()) /
            static_cast<double>(stores);
    };
    EXPECT_GT(unprotected_rate(0.9), unprotected_rate(0.15));
}

TEST(Icr, AreaIsParityPlusBookkeeping)
{
    Harness h(smallGeometry(), std::make_unique<IcrScheme>());
    EXPECT_EQ(h.cache->scheme()->codeBitsTotal(), 128u * 9);
}

} // namespace
} // namespace cppc
