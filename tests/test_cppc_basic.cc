#include <gtest/gtest.h>

#include <cstring>

#include "cppc/cppc_scheme.hh"
#include "test_helpers.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

Harness
makeHarness(CppcConfig cfg = CppcConfig{})
{
    return Harness(smallGeometry(), std::make_unique<CppcScheme>(cfg));
}

CppcScheme *
scheme(Harness &h)
{
    return static_cast<CppcScheme *>(h.cache->scheme());
}

TEST(CppcBasic, PaperFigure3Example)
{
    // Two stores; a particle strike flips the MSB of word 0; the load
    // detects it and recovery XORs R1, R2 and word 1 back into the
    // correct value.
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0x0000);
    h.cache->storeWord(0x8, 0x8000000000000000ull);
    h.cache->corruptBit(0, 63);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0x0ull);
    EXPECT_EQ(scheme(h)->stats().corrected_dirty, 1u);
}

TEST(CppcBasic, InvariantR1XorR2EqualsDirtyXor)
{
    // The Section 3 invariant under arbitrary traffic: stores,
    // overwrites, partial stores, evictions, refills.
    Harness h = makeHarness();
    Rng rng(101);
    for (int i = 0; i < 8000; ++i) {
        Addr a = rng.nextBelow(1024) * 8; // 8 KiB set vs 1 KiB cache
        double roll = rng.nextDouble();
        if (roll < 0.35) {
            h.cache->storeWord(a, rng.next());
        } else if (roll < 0.45) {
            uint8_t b = static_cast<uint8_t>(rng.next());
            h.cache->store(a + rng.nextBelow(8), 1, &b);
        } else {
            h.cache->loadWord(a);
        }
        if (i % 1000 == 0) {
            ASSERT_TRUE(scheme(h)->invariantHolds()) << "iteration " << i;
        }
    }
    EXPECT_TRUE(scheme(h)->invariantHolds());
    EXPECT_EQ(scheme(h)->stats().detections, 0u);
}

TEST(CppcBasic, InvariantWithManyDomainsAndPairs)
{
    for (unsigned domains : {1u, 2u, 4u}) {
        for (unsigned pairs : {1u, 2u, 4u, 8u}) {
            CppcConfig cfg;
            cfg.num_domains = domains;
            cfg.pairs_per_domain = pairs;
            Harness h = makeHarness(cfg);
            Rng rng(300 + domains * 10 + pairs);
            for (int i = 0; i < 2000; ++i) {
                Addr a = rng.nextBelow(512) * 8;
                if (rng.chance(0.5))
                    h.cache->storeWord(a, rng.next());
                else
                    h.cache->loadWord(a);
            }
            EXPECT_TRUE(scheme(h)->invariantHolds())
                << "D=" << domains << " P=" << pairs;
        }
    }
}

TEST(CppcBasic, EverySingleBitPositionInDirtyWordsCorrectable)
{
    Harness h = makeHarness();
    h.dirtyAllRows();
    Rng rng(103);
    for (int rep = 0; rep < 200; ++rep) {
        Row r = static_cast<Row>(rng.nextBelow(h.cache->geometry().numRows()));
        unsigned bit = static_cast<unsigned>(rng.nextBelow(64));
        uint64_t good = h.cache->rowData(r).toUint64();
        h.cache->corruptBit(r, bit);
        auto out = h.cache->load(h.addrOfRow(r), 8, nullptr);
        ASSERT_TRUE(out.fault_detected);
        ASSERT_FALSE(out.due) << "row " << r << " bit " << bit;
        ASSERT_EQ(h.cache->rowData(r).toUint64(), good);
        ASSERT_TRUE(scheme(h)->invariantHolds());
    }
}

TEST(CppcBasic, OddMultiBitFaultInOneDirtyWordCorrectable)
{
    // Section 3.4: the basic mechanism corrects any parity-visible
    // fault confined to one dirty word, not just single bits.
    Harness h = makeHarness();
    h.dirtyAllRows();
    uint64_t good = h.cache->rowData(5).toUint64();
    for (unsigned bit : {1u, 10u, 22u, 35u, 60u}) // distinct classes
        h.cache->corruptBit(5, bit);
    auto out = h.cache->load(h.addrOfRow(5), 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->rowData(5).toUint64(), good);
}

TEST(CppcBasic, CleanFaultConvertedToMiss)
{
    Harness h = makeHarness();
    uint8_t seed[8] = {0xca, 0xfe, 0xba, 0xbe, 0, 0, 0, 0};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    uint64_t mem_reads = h.mem.reads();
    h.cache->corruptBit(0, 7);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
    EXPECT_EQ(scheme(h)->stats().refetched_clean, 1u);
    EXPECT_GT(h.mem.reads(), mem_reads); // really refetched from below
}

TEST(CppcBasic, PaperFigure4BasicCppcFailsVerticalFault)
{
    // Basic CPPC (no byte shifting): a vertical 2-bit fault in the
    // same bit of two adjacent dirty words defeats R1/R2.
    CppcConfig cfg;
    cfg.byte_shifting = false;
    Harness h = makeHarness(cfg);
    h.cache->storeWord(0x0, 0);
    h.cache->storeWord(0x8, 0);
    h.cache->corruptBit(0, 63);
    h.cache->corruptBit(1, 63);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_TRUE(out.due);
}

TEST(CppcBasic, PaperFigure5ByteShiftingCorrectsVerticalFault)
{
    Harness h = makeHarness(); // shifting on by default
    h.cache->storeWord(0x0, 0);
    h.cache->storeWord(0x8, 0);
    h.cache->corruptBit(0, 63);
    h.cache->corruptBit(1, 63);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->rowData(0).toUint64(), 0u);
    EXPECT_EQ(h.cache->rowData(1).toUint64(), 0u);
    EXPECT_EQ(scheme(h)->stats().corrected_dirty, 2u);
}

TEST(CppcBasic, MorePairsInsteadOfShiftingSection411)
{
    // P = C = 8: every class has its own register pair, no rotation
    // needed, vertical faults are trivially separable.
    CppcConfig cfg;
    cfg.pairs_per_domain = 8;
    cfg.byte_shifting = false;
    Harness h = makeHarness(cfg);
    for (Row r = 0; r < 8; ++r)
        EXPECT_EQ(scheme(h)->rotationOf(r), 0u);
    h.cache->storeWord(0x0, 0x1111);
    h.cache->storeWord(0x8, 0x2222);
    h.cache->corruptBit(0, 5);
    h.cache->corruptBit(1, 5);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->rowData(0).toUint64(), 0x1111u);
    EXPECT_EQ(h.cache->rowData(1).toUint64(), 0x2222u);
}

TEST(CppcBasic, RowGeometryMapping)
{
    CppcConfig cfg;
    cfg.pairs_per_domain = 2;
    cfg.num_domains = 2;
    Harness h = makeHarness(cfg);
    CppcScheme *s = scheme(h);
    // 128 rows, 2 domains of 64 rows; classes 0-3 -> pair 0 (rot 0-3),
    // classes 4-7 -> pair 1 (rot 0-3), per Section 4.6.
    EXPECT_EQ(s->classOf(9), 1u);
    EXPECT_EQ(s->domainOf(10), 0u);
    EXPECT_EQ(s->domainOf(100), 1u);
    EXPECT_EQ(s->pairOf(2), 0u);
    EXPECT_EQ(s->pairOf(5), 1u);
    EXPECT_EQ(s->rotationOf(2), 2u);
    EXPECT_EQ(s->rotationOf(5), 1u);
    EXPECT_EQ(s->rotationOf(10), 2u); // class 2
}

TEST(CppcBasic, FaultCaughtOnReadBeforeWrite)
{
    // A store to a dirty word reads the old value first; a latent
    // fault there must be corrected before it poisons R2.
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0xAAAA);
    h.cache->storeWord(0x8, 0xBBBB);
    h.cache->corruptBit(0, 12);
    auto out = h.cache->storeWord(0x0, 0xCCCC); // dirty overwrite
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_TRUE(out.rbw);
    EXPECT_EQ(h.cache->loadWord(0x0), 0xCCCCull);
    EXPECT_TRUE(scheme(h)->invariantHolds());
}

TEST(CppcBasic, FaultCaughtOnWritebackBeforeEviction)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<CppcScheme>());
    h.cache->storeWord(0x0, 0x7777);
    h.cache->storeWord(0x8, 0x8888);
    h.cache->corruptBit(0, 3);
    // Force the eviction of the faulty dirty line.
    h.cache->loadWord(0x0 + g.size_bytes);
    uint8_t out[8];
    h.mem.peek(0x0, out, 8);
    uint64_t v;
    std::memcpy(&v, out, 8);
    EXPECT_EQ(v, 0x7777ull); // corrected value was written back
    EXPECT_TRUE(scheme(h)->invariantHolds());
}

TEST(CppcBasic, RbwOnlyForDirtyOverwritesAndPartialCleanStores)
{
    Harness h = makeHarness();
    auto a = h.cache->storeWord(0x0, 1); // clean word, full store
    EXPECT_FALSE(a.rbw);
    auto b = h.cache->storeWord(0x0, 2); // dirty overwrite
    EXPECT_TRUE(b.rbw);
    uint8_t byte = 0xee;
    auto c = h.cache->store(0x10, 1, &byte); // partial store to clean
    EXPECT_TRUE(c.rbw);
    EXPECT_EQ(scheme(h)->stats().rbw_words, 2u);
}

TEST(CppcBasic, PartialStoreKeepsInvariantAndCorrects)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0x1111111111111111ull);
    uint8_t byte = 0x77;
    h.cache->store(0x3, 1, &byte);
    ASSERT_TRUE(scheme(h)->invariantHolds());
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 30);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
}

TEST(CppcBasic, TwoFaultsInSameProtectionDomainAreDue)
{
    // Two temporal faults in the same parity class of two dirty words
    // with the same rotation (rows 8 apart) defeat one register pair.
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0);
    Addr a2 = h.addrOfRow(8); // same rotation class as row 0
    h.cache->storeWord(a2, 0);
    h.cache->corruptBit(0, 0);
    h.cache->corruptBit(8, 0);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.due);
}

TEST(CppcBasic, DomainSplittingIsolatesFaults)
{
    // Section 3.4: with two domains, simultaneous faults in different
    // halves of the cache are corrected independently.
    CppcConfig cfg;
    cfg.num_domains = 2;
    Harness h = makeHarness(cfg);
    h.dirtyAllRows();
    Row r1 = 3, r2 = 64 + 3; // same class, different domains
    ASSERT_NE(scheme(h)->domainOf(r1), scheme(h)->domainOf(r2));
    uint64_t g1 = h.cache->rowData(r1).toUint64();
    uint64_t g2 = h.cache->rowData(r2).toUint64();
    h.cache->corruptBit(r1, 9);
    h.cache->corruptBit(r2, 9);
    auto out = h.cache->load(h.addrOfRow(r1), 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->rowData(r1).toUint64(), g1);
    EXPECT_EQ(h.cache->rowData(r2).toUint64(), g2);
}

TEST(CppcBasic, L2BlockGranularity)
{
    // Section 3.5: unit = L1 block (32 bytes), registers 256 bits.
    CacheGeometry g = smallGeometry(32);
    CppcConfig cfg;
    Harness h(g, std::make_unique<CppcScheme>(cfg));
    uint8_t block[32];
    for (unsigned i = 0; i < 32; ++i)
        block[i] = static_cast<uint8_t>(3 * i + 1);
    h.cache->store(0x0, 32, block);
    uint8_t block2[32];
    for (unsigned i = 0; i < 32; ++i)
        block2[i] = static_cast<uint8_t>(7 * i + 5);
    h.cache->store(0x20, 32, block2);
    h.cache->corruptBit(0, 100);
    h.cache->corruptBit(0, 101);
    h.cache->corruptBit(0, 102);
    auto out = h.cache->load(0x0, 32, nullptr);
    EXPECT_FALSE(out.due);
    uint8_t got[32];
    h.cache->load(0x0, 32, got);
    EXPECT_EQ(std::memcmp(block, got, 32), 0);
    EXPECT_EQ(scheme(h)->registers().unitBytes(), 32u);
}

TEST(CppcBasic, RegisterFaultDetectedAndScrubbed)
{
    // Section 4.9: registers carry parity; a register fault is
    // rebuilt from the dirty cache contents.
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0xAB);
    h.cache->storeWord(0x40, 0xCD);
    EXPECT_TRUE(scheme(h)->registersOk());
    scheme(h)->injectRegisterFault(0, 0, XorRegisterFile::Which::R1, 20);
    EXPECT_FALSE(scheme(h)->registersOk());
    EXPECT_FALSE(scheme(h)->invariantHolds());
    ASSERT_TRUE(scheme(h)->scrubRegisters());
    EXPECT_TRUE(scheme(h)->registersOk());
    EXPECT_TRUE(scheme(h)->invariantHolds());
    // Correction capability restored.
    h.cache->corruptBit(0, 1);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0xABull);
}

TEST(CppcBasic, ScrubRefusedWhileDirtyDataFaulty)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0xEF);
    h.cache->corruptBit(0, 4);
    EXPECT_FALSE(scheme(h)->scrubRegisters());
}

TEST(CppcBasic, TemporalAliasingSdcHazardSection47)
{
    // The documented hazard: two temporal faults laid out like a
    // rotated vertical strike are "corrected" into a 4-bit SDC.
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0);
    h.cache->storeWord(0x8, 0);
    h.cache->corruptBit(0, 56);
    h.cache->corruptBit(1, 8);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due); // the locator believes it succeeded
    // Both words now have TWO flipped bits and parity is silent.
    EXPECT_EQ(h.cache->rowData(0).toUint64(), (1ull << 56) | 1ull);
    EXPECT_EQ(h.cache->rowData(1).toUint64(), (1ull << 8) | 1ull);
    auto out2 = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out2.fault_detected); // silent corruption
}

TEST(CppcBasic, MorePairsEliminateThatAliasing)
{
    // Section 4.7: with 8 register pairs the two faults fall into
    // different pairs and are corrected independently.
    CppcConfig cfg;
    cfg.pairs_per_domain = 8;
    cfg.byte_shifting = false;
    Harness h = makeHarness(cfg);
    h.cache->storeWord(0x0, 0);
    h.cache->storeWord(0x8, 0);
    h.cache->corruptBit(0, 56);
    h.cache->corruptBit(1, 8);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->rowData(0).toUint64(), 0u);
    EXPECT_EQ(h.cache->rowData(1).toUint64(), 0u);
}

TEST(CppcBasic, ConfigValidation)
{
    CacheGeometry g = smallGeometry();
    CppcConfig bad;
    bad.pairs_per_domain = 3; // does not divide 8
    EXPECT_THROW(bad.validate(g), FatalError);

    CppcConfig wide;
    wide.num_classes = 16; // 16 rotations > 8 bytes
    EXPECT_THROW(wide.validate(g), FatalError);

    CppcConfig parity;
    parity.parity_ways = 4; // spatial machinery requires 8
    EXPECT_THROW(parity.validate(g), FatalError);

    CppcConfig domains;
    domains.num_domains = 7; // does not divide 128 rows
    EXPECT_THROW(domains.validate(g), FatalError);

    CppcConfig good;
    good.num_classes = 8;
    good.pairs_per_domain = 2;
    good.num_domains = 4;
    EXPECT_NO_THROW(good.validate(g));
}

TEST(CppcBasic, AreaFootprint)
{
    Harness h = makeHarness();
    // 128 rows x 8 parity bits + 2 registers x (64 + 1 parity).
    EXPECT_EQ(h.cache->scheme()->codeBitsTotal(), 128u * 8 + 2 * 65);
    EXPECT_EQ(h.cache->scheme()->bitlineOverheadFactor(), 1.0);
}

TEST(CppcBasic, Name)
{
    CppcScheme s{CppcConfig{}};
    EXPECT_EQ(s.name(), "cppc-k8-c8-p1-d1-shift");
}

} // namespace
} // namespace cppc
