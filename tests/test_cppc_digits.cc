/**
 * @file
 * The Section 4 N-by-N generalisation: CPPC with 4-bit digits (4-way
 * parity + nibble shifting, a 4x4 spatial envelope) and 16-bit digits,
 * validated against the same battery as the byte design.
 */

#include <gtest/gtest.h>

#include "cppc/cppc_scheme.hh"
#include "test_helpers.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

CppcConfig
nibbleConfig()
{
    CppcConfig cfg;
    cfg.digit_bits = 4;
    cfg.parity_ways = 4;
    cfg.num_classes = 4;
    return cfg;
}

CppcScheme *
scheme(Harness &h)
{
    return static_cast<CppcScheme *>(h.cache->scheme());
}

std::vector<uint64_t>
snapshot(Harness &h)
{
    std::vector<uint64_t> v;
    for (Row r = 0; r < h.cache->geometry().numRows(); ++r)
        v.push_back(h.cache->rowData(r).toUint64());
    return v;
}

TEST(WideWordDigits, BitRotationConvention)
{
    Rng rng(3);
    WideWord w = WideWord::random(rng, 8);
    WideWord r = w.rotatedLeftBits(4);
    for (unsigned j = 0; j < 64; ++j)
        EXPECT_EQ(r.bit(j), w.bit((j + 4) % 64));
    EXPECT_EQ(w.rotatedLeftBits(16), w.rotatedLeft(2));
    EXPECT_EQ(w.rotatedLeftBits(12).rotatedRightBits(12), w);
    EXPECT_EQ(w.rotatedLeftBits(64), w);
}

TEST(WideWordDigits, DigitAccessors)
{
    WideWord w = WideWord::fromUint64(0xFEDCBA9876543210ull);
    EXPECT_EQ(w.digit(0, 4), 0x0u);
    EXPECT_EQ(w.digit(1, 4), 0x1u);
    EXPECT_EQ(w.digit(15, 4), 0xFu);
    EXPECT_EQ(w.digit(0, 16), 0x3210u);
    w.setDigit(2, 4, 0x7);
    EXPECT_EQ(w.toUint64(), 0xFEDCBA9876543710ull);
}

TEST(WideWordDigits, NibbleRotationPreserves4WayParity)
{
    Rng rng(5);
    WideWord w = WideWord::random(rng, 8);
    for (unsigned k = 0; k < 16; ++k)
        EXPECT_EQ(w.rotatedLeftBits(4 * k).interleavedParity(4),
                  w.interleavedParity(4));
}

TEST(CppcDigits, InvariantUnderTraffic4x4)
{
    Harness h(smallGeometry(), std::make_unique<CppcScheme>(nibbleConfig()));
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        Addr a = rng.nextBelow(512) * 8;
        if (rng.chance(0.5))
            h.cache->storeWord(a, rng.next());
        else
            h.cache->loadWord(a);
    }
    EXPECT_TRUE(scheme(h)->invariantHolds());
    EXPECT_EQ(scheme(h)->stats().detections, 0u);
}

TEST(CppcDigits, SingleFaultsRecover4x4)
{
    Harness h(smallGeometry(), std::make_unique<CppcScheme>(nibbleConfig()));
    h.dirtyAllRows();
    Rng rng(11);
    for (int rep = 0; rep < 100; ++rep) {
        Row r = static_cast<Row>(rng.nextBelow(128));
        uint64_t good = h.cache->rowData(r).toUint64();
        h.cache->corruptBit(r, static_cast<unsigned>(rng.nextBelow(64)));
        auto out = h.cache->load(h.addrOfRow(r), 8, nullptr);
        ASSERT_FALSE(out.due);
        ASSERT_EQ(h.cache->rowData(r).toUint64(), good);
    }
}

TEST(CppcDigits, DenseRectanglesWithin4x4Corrected)
{
    Harness h(smallGeometry(), std::make_unique<CppcScheme>(nibbleConfig()));
    h.dirtyAllRows();
    std::vector<uint64_t> golden = snapshot(h);
    for (unsigned height = 2; height <= 3; ++height) {
        for (unsigned width = 1; width <= 4; ++width) {
            for (unsigned c0 = 0; c0 + width <= 64; c0 += 7) {
                for (Row r0 : {0u, 5u, 40u}) {
                    for (Row r = r0; r < r0 + height; ++r)
                        for (unsigned c = c0; c < c0 + width; ++c)
                            h.cache->corruptBit(r, c);
                    auto out = h.cache->load(h.addrOfRow(r0), 8, nullptr);
                    ASSERT_TRUE(out.fault_detected);
                    ASSERT_FALSE(out.due)
                        << "h=" << height << " w=" << width
                        << " c0=" << c0 << " r0=" << r0;
                    for (Row r = 0; r < 128; ++r)
                        ASSERT_EQ(h.cache->rowData(r).toUint64(),
                                  golden[r]);
                }
            }
        }
    }
}

TEST(CppcDigits, EnvelopeIsSmallerThan8x8)
{
    // A 6-row vertical strike fits the byte design's 8-row envelope
    // but exceeds the nibble design's 4 classes: rows 0 and 4 share a
    // rotation -> DUE with 4x4, corrected with 8x8.
    {
        Harness h(smallGeometry(),
                  std::make_unique<CppcScheme>(nibbleConfig()));
        h.dirtyAllRows();
        for (Row r = 0; r < 6; ++r)
            h.cache->corruptBit(r, 10);
        auto out = h.cache->load(h.addrOfRow(0), 8, nullptr);
        EXPECT_TRUE(out.due);
    }
    {
        Harness h(smallGeometry(), std::make_unique<CppcScheme>());
        h.dirtyAllRows();
        std::vector<uint64_t> golden = snapshot(h);
        for (Row r = 0; r < 6; ++r)
            h.cache->corruptBit(r, 10);
        auto out = h.cache->load(h.addrOfRow(0), 8, nullptr);
        EXPECT_FALSE(out.due);
        for (Row r = 0; r < 128; ++r)
            ASSERT_EQ(h.cache->rowData(r).toUint64(), golden[r]);
    }
}

TEST(CppcDigits, AreaHalvesWithSmallerDigits)
{
    // Section 5.3's trade: 4-way parity stores half the code bits of
    // 8-way for the same cache.
    Harness h4(smallGeometry(), std::make_unique<CppcScheme>(nibbleConfig()));
    Harness h8(smallGeometry(), std::make_unique<CppcScheme>());
    uint64_t regs = 2 * 65; // identical register cost
    EXPECT_EQ(h4.cache->scheme()->codeBitsTotal() - regs,
              (h8.cache->scheme()->codeBitsTotal() - regs) / 2);
}

TEST(CppcDigits, SixteenBitDigitsOnWideUnits)
{
    // 16-bit digits on a 32-byte (L2) unit: 16 digit positions, a
    // 16x16 envelope with C=16 classes.
    CacheGeometry g = test::smallGeometry(32);
    CppcConfig cfg;
    cfg.digit_bits = 16;
    cfg.parity_ways = 16;
    cfg.num_classes = 16;
    Harness h(g, std::make_unique<CppcScheme>(cfg));
    Rng rng(13);
    for (Row r = 0; r < g.numRows(); ++r) {
        uint8_t block[32];
        for (unsigned i = 0; i < 32; ++i)
            block[i] = static_cast<uint8_t>(rng.next());
        h.cache->store(h.addrOfRow(r), 32, block);
    }
    ASSERT_TRUE(scheme(h)->invariantHolds());
    // Vertical pair inside the envelope.
    WideWord g0 = h.cache->rowData(4), g1 = h.cache->rowData(5);
    h.cache->corruptBit(4, 33);
    h.cache->corruptBit(5, 33);
    auto out = h.cache->load(h.addrOfRow(4), 32, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->rowData(4), g0);
    EXPECT_EQ(h.cache->rowData(5), g1);
}

TEST(CppcDigits, ConfigValidation)
{
    CacheGeometry g = smallGeometry();
    CppcConfig bad;
    bad.digit_bits = 5; // does not divide 64
    EXPECT_THROW(bad.validate(g), FatalError);

    CppcConfig mismatch = nibbleConfig();
    mismatch.parity_ways = 8; // parity must equal digit size
    EXPECT_THROW(mismatch.validate(g), FatalError);

    CppcConfig too_many = nibbleConfig();
    too_many.num_classes = 32; // 32 rotations > 16 nibbles
    EXPECT_THROW(too_many.validate(g), FatalError);

    EXPECT_NO_THROW(nibbleConfig().validate(g));
}

TEST(CppcDigits, SchemeNameIncludesDigitSize)
{
    CppcScheme s(nibbleConfig());
    EXPECT_EQ(s.name(), "cppc-k4-c4-p1-d1-shift-n4");
}

} // namespace
} // namespace cppc
