/**
 * @file
 * Multi-level hierarchy behaviours: write-through L1s, mixed schemes
 * per level, and nested recovery (an L1 refetch that finds the L2 copy
 * faulty and triggers the L2's own recovery first).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "cppc/cppc_scheme.hh"
#include "protection/parity.hh"
#include "sim/paper_config.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

TEST(WriteThrough, StoresReachNextLevelImmediately)
{
    MainMemory mem;
    CacheGeometry g = test::smallGeometry();
    WriteBackCache l1("L1D", g, ReplacementKind::LRU, &mem,
                      std::make_unique<OneDimParityScheme>(8));
    l1.setWriteThrough(true);
    l1.storeWord(0x40, 0xFEED);
    uint8_t buf[8];
    mem.peek(0x40, buf, 8);
    uint64_t v;
    std::memcpy(&v, buf, 8);
    EXPECT_EQ(v, 0xFEEDull);
    EXPECT_EQ(l1.dirtyUnitCount(), 0u);
    EXPECT_EQ(l1.writeThroughs(), 1u);
}

TEST(WriteThrough, DirtyFaultsImpossibleParityAlwaysRecovers)
{
    // The Section 1 claim: in a write-through L1, parity alone is a
    // complete protection — every fault is in clean data.
    MainMemory mem;
    CacheGeometry g = test::smallGeometry();
    WriteBackCache l1("L1D", g, ReplacementKind::LRU, &mem,
                      std::make_unique<OneDimParityScheme>(8));
    l1.setWriteThrough(true);
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        l1.storeWord(rng.nextBelow(128) * 8, rng.next());
    for (int rep = 0; rep < 50; ++rep) {
        Row r = static_cast<Row>(rng.nextBelow(g.numRows()));
        if (!l1.rowValid(r))
            continue;
        uint64_t good = l1.rowData(r).toUint64();
        l1.corruptBit(r, static_cast<unsigned>(rng.nextBelow(64)));
        auto out = l1.load(l1.rowAddr(r), 8, nullptr);
        ASSERT_TRUE(out.fault_detected);
        ASSERT_FALSE(out.due);
        ASSERT_EQ(l1.rowData(r).toUint64(), good);
    }
}

TEST(WriteThrough, FunctionalTransparency)
{
    MainMemory mem;
    CacheGeometry g = test::smallGeometry();
    WriteBackCache l1("L1D", g, ReplacementKind::LRU, &mem,
                      std::make_unique<CppcScheme>());
    l1.setWriteThrough(true);
    auto *s = static_cast<CppcScheme *>(l1.scheme());
    Rng rng(5);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 6000; ++i) {
        Addr a = rng.nextBelow(1024) * 8;
        if (rng.chance(0.5)) {
            uint64_t v = rng.next();
            golden[a] = v;
            l1.storeWord(a, v);
        } else {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            ASSERT_EQ(l1.loadWord(a), expect);
        }
    }
    // CPPC's registers stay balanced: nothing is ever dirty.
    EXPECT_TRUE(s->invariantHolds());
    EXPECT_EQ(l1.dirtyUnitCount(), 0u);
}

TEST(HierarchyModes, MixedSchemesPerLevel)
{
    // Commercial practice: parity L1 over SECDED L2.
    Hierarchy h(SchemeKind::Parity1D, SchemeKind::Secded, CppcConfig{},
                false);
    EXPECT_EQ(h.l1d->scheme()->name(), "parity1d-k8");
    EXPECT_EQ(h.l2->scheme()->name(), "secded-i8");
    h.l1d->storeWord(0x100, 0xABCD);
    EXPECT_EQ(h.l1d->loadWord(0x100), 0xABCDull);
}

TEST(HierarchyModes, NestedRecoveryL1RefetchHitsFaultyL2)
{
    // An L1 clean fault refetches from the L2; the L2 copy is itself
    // corrupted, so the L2's CPPC recovers first and the L1 receives
    // the corrected data — a two-level recovery chain.
    Hierarchy h(SchemeKind::Cppc);
    h.l1d->storeWord(0x200, 0x1357);
    // Push it into the L2 (dirty there), then re-load clean into L1.
    h.l1d->invalidateLine(0x200);
    EXPECT_EQ(h.l1d->loadWord(0x200), 0x1357ull);

    // Find both copies.
    Row l1_row = 0, l2_row = 0;
    bool f1 = false, f2 = false;
    h.l1d->forEachValidRow([&](Row r, bool) {
        if (!f1 && h.l1d->rowAddr(r) == 0x200) {
            l1_row = r;
            f1 = true;
        }
    });
    h.l2->forEachValidRow([&](Row r, bool dirty) {
        if (!f2 && dirty && h.l2->rowAddr(r) == 0x200) {
            l2_row = r;
            f2 = true;
        }
    });
    ASSERT_TRUE(f1);
    ASSERT_TRUE(f2);

    // Corrupt BOTH copies.
    h.l1d->corruptBit(l1_row, 5);
    h.l2->corruptBit(l2_row, 77);

    auto out = h.l1d->load(0x200, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.l1d->loadWord(0x200), 0x1357ull);
    EXPECT_EQ(h.l2->scheme()->stats().corrected_dirty, 1u);
    EXPECT_GE(h.l1d->scheme()->stats().refetched_clean, 1u);
}

TEST(HierarchyModes, L1IFillsFromUnifiedL2)
{
    Hierarchy h(SchemeKind::Parity1D);
    uint64_t l2_reads_before = h.l2->stats().read_misses +
        h.l2->stats().read_hits;
    h.l1i->load((1ull << 40), 4, nullptr);
    EXPECT_GT(h.l2->stats().read_misses + h.l2->stats().read_hits,
              l2_reads_before);
}

TEST(HierarchyModes, WriteThroughThenEvictNoWriteback)
{
    MainMemory mem;
    CacheGeometry g = test::smallGeometry();
    WriteBackCache l1("L1D", g, ReplacementKind::LRU, &mem,
                      std::make_unique<OneDimParityScheme>(8));
    l1.setWriteThrough(true);
    l1.storeWord(0x0, 0x42);
    l1.loadWord(0x0 + g.size_bytes); // evict the (clean) line
    EXPECT_EQ(l1.stats().writebacks, 0u);
    EXPECT_EQ(l1.stats().clean_evictions, 1u);
    EXPECT_EQ(l1.loadWord(0x0), 0x42ull);
}

} // namespace
} // namespace cppc
