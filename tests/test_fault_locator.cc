#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "cppc/fault_locator.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

/**
 * Build locator inputs from planted per-word fault masks.
 *
 * @p masks[i] is the true flip mask of word i (width n bytes); words
 * with zero masks are dropped (their parity never fired).  Returns the
 * surviving FaultyWord descriptors, the matching true flips, and R3.
 */
struct Scenario
{
    std::vector<FaultyWord> words;
    std::vector<BitFlip> true_flips;
    WideWord r3;

    Scenario(const std::vector<std::pair<unsigned, WideWord>> &rot_masks,
             unsigned n_bytes)
        : r3(n_bytes)
    {
        for (const auto &[rot, mask] : rot_masks) {
            if (mask.isZero())
                continue;
            uint8_t pmask = static_cast<uint8_t>(mask.interleavedParity(8));
            unsigned idx = static_cast<unsigned>(words.size());
            words.push_back({rot, pmask});
            for (unsigned j = 0; j < mask.sizeBits(); ++j)
                if (mask.bit(j))
                    true_flips.push_back({idx, j});
            r3 ^= mask.rotatedLeft(rot);
        }
        std::sort(true_flips.begin(), true_flips.end());
    }
};

enum class Kind { Solver, Paper };

std::unique_ptr<FaultLocator>
make(Kind kind, unsigned n_bytes)
{
    if (kind == Kind::Paper)
        return std::make_unique<PaperFaultLocator>(n_bytes);
    return std::make_unique<SolverFaultLocator>(n_bytes);
}

class LocatorTest : public ::testing::TestWithParam<Kind>
{
  protected:
    std::unique_ptr<FaultLocator>
    locator(unsigned n_bytes = 8) const
    {
        return make(GetParam(), n_bytes);
    }
};

/** Dense rectangular strike: rows r0..r0+h-1 (rotation = row mod 8),
 *  bit columns [c0, c0+w). */
Scenario
denseRect(unsigned r0, unsigned h, unsigned c0, unsigned w,
          unsigned n_bytes = 8)
{
    std::vector<std::pair<unsigned, WideWord>> rm;
    for (unsigned r = r0; r < r0 + h; ++r) {
        WideWord mask(n_bytes);
        for (unsigned c = c0; c < c0 + w; ++c)
            mask.setBit(c);
        rm.emplace_back(r % 8, mask);
    }
    return Scenario(rm, n_bytes);
}

TEST_P(LocatorTest, PaperWorkedExampleFigures8And9)
{
    // Section 4.5's walk-through: bits 5-12 flipped in 4 words of
    // classes 0-3 (an 8-wide strike straddling bytes 0 and 1).
    Scenario s = denseRect(0, 4, 5, 8);
    ASSERT_EQ(s.words.size(), 4u);
    // Check the text's intermediate facts: parity bits P0-P7 fire for
    // every word, and R3 has bits 0-12 and 45-63 set.
    for (const auto &w : s.words)
        EXPECT_EQ(w.parity_mask, 0xff);
    for (unsigned j = 0; j < 64; ++j) {
        bool expect = (j <= 12) || (j >= 45);
        EXPECT_EQ(s.r3.bit(j), expect) << "R3 bit " << j;
    }
    auto flips = locator()->locate(s.words, s.r3);
    ASSERT_TRUE(flips.has_value());
    std::sort(flips->begin(), flips->end());
    EXPECT_EQ(*flips, s.true_flips);
}

TEST_P(LocatorTest, SingleColumnVerticalFaults)
{
    // Vertical strikes inside one byte column, all heights 2..7.
    for (unsigned h = 2; h <= 7; ++h) {
        for (unsigned c0 : {0u, 8u, 24u, 56u}) {
            for (unsigned w = 1; w + (c0 % 8) <= 8 && w <= 8; ++w) {
                Scenario s = denseRect(1, h, c0, w);
                auto flips = locator()->locate(s.words, s.r3);
                ASSERT_TRUE(flips.has_value())
                    << "h=" << h << " c0=" << c0 << " w=" << w;
                std::sort(flips->begin(), flips->end());
                EXPECT_EQ(*flips, s.true_flips);
            }
        }
    }
}

TEST_P(LocatorTest, StraddlingByteBoundary)
{
    // Byte-straddling strikes are guaranteed locatable up to 6 rows
    // with one register pair; at 7 rows R3 occupies all 8 bytes and
    // the column anchor is lost (see the h=7 test below).
    for (unsigned h = 2; h <= 6; ++h) {
        for (unsigned c0 : {3u, 13u, 29u, 53u}) { // mid-byte starts
            Scenario s = denseRect(0, h, c0, 8);
            auto flips = locator()->locate(s.words, s.r3);
            ASSERT_TRUE(flips.has_value()) << "h=" << h << " c0=" << c0;
            std::sort(flips->begin(), flips->end());
            EXPECT_EQ(*flips, s.true_flips);
        }
    }
}

TEST_P(LocatorTest, StraddlingHeight7AmbiguousWithOnePair)
{
    // A 7-row strike across a byte boundary leaves no zero R3 byte to
    // anchor the column: a rotated reading is equally consistent, so
    // the locator must refuse (DUE) rather than guess.  (The same
    // family as Section 4.6's special cases; a second register pair
    // restores correction — covered in the end-to-end spatial tests.)
    Scenario s = denseRect(0, 7, 13, 8);
    EXPECT_FALSE(locator()->locate(s.words, s.r3).has_value());
}

TEST(SolverLocator, ExhaustiveDenseRectangles)
{
    // The guaranteed one-pair envelope: every dense rectangle of up to
    // 6 rows, and every 7-row rectangle confined to one byte column,
    // must be located exactly; anything else may be DUE but must never
    // be answered wrongly.
    SolverFaultLocator loc(8);
    for (unsigned h = 2; h <= 7; ++h) {
        for (unsigned r0 = 0; r0 < 8; ++r0) {
            for (unsigned w = 1; w <= 8; ++w) {
                for (unsigned c0 = 0; c0 + w <= 64; c0 += 3) {
                    Scenario s = denseRect(r0, h, c0, w);
                    auto flips = loc.locate(s.words, s.r3);
                    bool guaranteed = h <= 6 || (c0 % 8) + w <= 8;
                    if (guaranteed) {
                        ASSERT_TRUE(flips.has_value())
                            << "h=" << h << " r0=" << r0 << " w=" << w
                            << " c0=" << c0;
                    }
                    if (flips) {
                        std::sort(flips->begin(), flips->end());
                        ASSERT_EQ(*flips, s.true_flips)
                            << "h=" << h << " r0=" << r0 << " w=" << w
                            << " c0=" << c0;
                    }
                }
            }
        }
    }
}

TEST_P(LocatorTest, Dense8x8IsDue)
{
    // Section 4.6: with one register pair the full 8x8 strike leaves no
    // way to tell which byte column was hit.
    Scenario s = denseRect(0, 8, 8, 8);
    EXPECT_FALSE(locator()->locate(s.words, s.r3).has_value());
}

TEST_P(LocatorTest, VerticalLineHeight8IsDue)
{
    // All 8 rotation classes with identical single-bit masks: R3 is
    // rotation-symmetric, the column is unrecoverable.
    std::vector<std::pair<unsigned, WideWord>> rm;
    for (unsigned r = 0; r < 8; ++r) {
        WideWord m(8);
        m.setBit(16); // byte 2, offset 0
        rm.emplace_back(r, m);
    }
    Scenario s(rm, 8);
    EXPECT_FALSE(locator()->locate(s.words, s.r3).has_value());
}

TEST_P(LocatorTest, Class0Class4SymmetricFaultIsDue)
{
    // The other Section 4.6 special case: identical masks in byte 0 of
    // a class-0 and a class-4 word alias with byte 4 of both.
    WideWord m(8);
    m.setBit(1);
    m.setBit(2);
    Scenario s({{0u, m}, {4u, m}}, 8);
    EXPECT_FALSE(locator()->locate(s.words, s.r3).has_value());
}

TEST_P(LocatorTest, Class0Class4DistinctMasksLocatable)
{
    // Same geometry but different per-word patterns: the pmask
    // asymmetry breaks the alias and the fault is located.
    WideWord m0(8), m4(8);
    m0.setBit(1);
    m4.setBit(2);
    m4.setBit(3);
    Scenario s({{0u, m0}, {4u, m4}}, 8);
    auto flips = locator()->locate(s.words, s.r3);
    ASSERT_TRUE(flips.has_value());
    std::sort(flips->begin(), flips->end());
    EXPECT_EQ(*flips, s.true_flips);
}

TEST_P(LocatorTest, DuplicateRotationsRejected)
{
    WideWord m(8);
    m.setBit(0);
    Scenario s({{3u, m}, {3u, m}}, 8);
    // Two words sharing a rotation (rows 8 apart): never locatable.
    EXPECT_FALSE(locator()->locate(s.words, s.r3).has_value());
}

TEST_P(LocatorTest, TemporalAliasingFromPaperSection47)
{
    // Two temporal single-bit faults: bit 56 of a class-0 word and
    // bit 8 of a class-1 word.  Both rotate onto a pattern identical
    // to "bit 0 flipped in both words", so the locator *mislocates* —
    // the paper's 2-bit-DUE-to-4-bit-SDC hazard.
    WideWord m0(8), m1(8);
    m0.setBit(56);
    m1.setBit(8);
    Scenario s({{0u, m0}, {1u, m1}}, 8);
    auto flips = locator()->locate(s.words, s.r3);
    ASSERT_TRUE(flips.has_value());
    std::vector<BitFlip> wrong = {{0u, 0u}, {1u, 0u}};
    std::sort(flips->begin(), flips->end());
    EXPECT_EQ(*flips, wrong);
    EXPECT_NE(*flips, s.true_flips);
}

TEST_P(LocatorTest, SparseRandomPatternsNeverMislocated)
{
    // Random sparse sub-patterns of legal strikes: the locator either
    // finds exactly the planted flips or declares DUE — never a wrong
    // answer (that would be an SDC inside the coverage envelope).
    Rng rng(1234 + static_cast<unsigned>(GetParam()));
    unsigned located = 0, total = 0;
    for (int rep = 0; rep < 400; ++rep) {
        unsigned h = static_cast<unsigned>(rng.nextRange(2, 6));
        unsigned w = static_cast<unsigned>(rng.nextRange(1, 8));
        unsigned r0 = static_cast<unsigned>(rng.nextBelow(8));
        unsigned c0 = static_cast<unsigned>(rng.nextBelow(64 - w + 1));
        std::vector<std::pair<unsigned, WideWord>> rm;
        for (unsigned r = r0; r < r0 + h; ++r) {
            WideWord mask(8);
            for (unsigned c = c0; c < c0 + w; ++c)
                if (rng.chance(0.6))
                    mask.setBit(c);
            rm.emplace_back(r % 8, mask);
        }
        Scenario s(rm, 8);
        if (s.words.size() < 2)
            continue;
        ++total;
        auto flips = locator()->locate(s.words, s.r3);
        if (!flips)
            continue;
        std::sort(flips->begin(), flips->end());
        ASSERT_EQ(*flips, s.true_flips) << "rep " << rep;
        ++located;
    }
    // The overwhelming majority of in-envelope strikes must be located.
    EXPECT_GT(located * 10, total * 9);
}

TEST_P(LocatorTest, WideUnitsL2Granularity)
{
    // 32-byte protection units (L2 CPPC): same machinery, wider words.
    for (unsigned h = 2; h <= 7; ++h) {
        Scenario s = denseRect(0, h, 100, 8, 32);
        auto flips = locator(32)->locate(s.words, s.r3);
        ASSERT_TRUE(flips.has_value()) << "h=" << h;
        std::sort(flips->begin(), flips->end());
        EXPECT_EQ(*flips, s.true_flips);
    }
}

TEST_P(LocatorTest, EmptyInputsRejected)
{
    EXPECT_FALSE(locator()->locate({}, WideWord(8)).has_value());
}

INSTANTIATE_TEST_SUITE_P(Algorithms, LocatorTest,
                         ::testing::Values(Kind::Solver, Kind::Paper),
                         [](const auto &info) {
                             return info.param == Kind::Solver ? "Solver"
                                                               : "Paper";
                         });

TEST(LocatorAgreement, SolverAndPaperAgreeOnDenseRectangles)
{
    SolverFaultLocator solver(8);
    PaperFaultLocator paper(8);
    unsigned paper_located = 0, solver_located = 0;
    for (unsigned h = 2; h <= 8; ++h) {
        for (unsigned r0 : {0u, 3u}) {
            for (unsigned w = 1; w <= 8; ++w) {
                for (unsigned c0 = 0; c0 + w <= 64; c0 += 5) {
                    Scenario s = denseRect(r0, h, c0, w);
                    auto a = solver.locate(s.words, s.r3);
                    auto b = paper.locate(s.words, s.r3);
                    if (a) {
                        std::sort(a->begin(), a->end());
                        ++solver_located;
                    }
                    if (b) {
                        std::sort(b->begin(), b->end());
                        ++paper_located;
                        // Anything the paper procedure locates must
                        // match the planted truth (and the solver).
                        ASSERT_EQ(*b, s.true_flips);
                        ASSERT_TRUE(a.has_value());
                        ASSERT_EQ(*a, *b);
                    }
                }
            }
        }
    }
    EXPECT_GT(solver_located, 0u);
    // The GF(2) solver is at least as capable as the step procedure.
    EXPECT_GE(solver_located, paper_located);
}

} // namespace
} // namespace cppc
