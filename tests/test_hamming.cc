#include <gtest/gtest.h>

#include "protection/hamming.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

TEST(Hamming, Classic7264Layout)
{
    HammingSecded h(64);
    EXPECT_EQ(h.dataBits(), 64u);
    EXPECT_EQ(h.hammingBits(), 7u);
    EXPECT_EQ(h.codeBits(), 8u); // the paper's 12.5% overhead
}

TEST(Hamming, L2BlockLayout)
{
    HammingSecded h(256);
    EXPECT_EQ(h.hammingBits(), 9u);
    EXPECT_EQ(h.codeBits(), 10u);
}

TEST(Hamming, CleanDecodes)
{
    HammingSecded h(64);
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        WideWord d = WideWord::random(rng, 8);
        uint32_t code = h.encode(d);
        auto res = h.decode(d, code);
        EXPECT_EQ(res.status, HammingSecded::Status::Clean);
    }
}

class HammingWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HammingWidths, CorrectsEverySingleDataBitError)
{
    unsigned bytes = GetParam();
    HammingSecded h(bytes * 8);
    Rng rng(37 + bytes);
    WideWord d = WideWord::random(rng, bytes);
    uint32_t code = h.encode(d);
    for (unsigned bit = 0; bit < bytes * 8; ++bit) {
        WideWord f = d;
        f.flipBit(bit);
        auto res = h.decode(f, code);
        ASSERT_EQ(res.status, HammingSecded::Status::CorrectedData)
            << "bit " << bit;
        EXPECT_EQ(res.bit, bit);
    }
}

TEST_P(HammingWidths, DetectsEveryDoubleDataBitError)
{
    unsigned bytes = GetParam();
    HammingSecded h(bytes * 8);
    Rng rng(41 + bytes);
    WideWord d = WideWord::random(rng, bytes);
    uint32_t code = h.encode(d);
    unsigned n = bytes * 8;
    // Exhaustive for 64-bit; sampled stride for wider words.
    unsigned stride = bytes <= 8 ? 1 : 5;
    for (unsigned i = 0; i < n; i += stride) {
        for (unsigned j = i + 1; j < n; j += stride) {
            WideWord f = d;
            f.flipBit(i);
            f.flipBit(j);
            auto res = h.decode(f, code);
            EXPECT_EQ(res.status, HammingSecded::Status::Detected)
                << "bits " << i << "," << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, HammingWidths,
                         ::testing::Values(1u, 4u, 8u, 16u, 32u));

TEST(Hamming, CorrectsCheckBitErrors)
{
    HammingSecded h(64);
    Rng rng(43);
    WideWord d = WideWord::random(rng, 8);
    uint32_t code = h.encode(d);
    for (unsigned i = 0; i < h.codeBits(); ++i) {
        uint32_t bad = code ^ (1u << i);
        auto res = h.decode(d, bad);
        EXPECT_EQ(res.status, HammingSecded::Status::CorrectedCode)
            << "code bit " << i;
    }
}

TEST(Hamming, DataPlusCheckDoubleDetected)
{
    HammingSecded h(64);
    Rng rng(47);
    WideWord d = WideWord::random(rng, 8);
    uint32_t code = h.encode(d);
    for (unsigned cb = 0; cb < h.codeBits(); ++cb) {
        WideWord f = d;
        f.flipBit(11);
        auto res = h.decode(f, code ^ (1u << cb));
        EXPECT_EQ(res.status, HammingSecded::Status::Detected);
    }
}

TEST(Hamming, EncodeIsDeterministicAndDataDependent)
{
    HammingSecded h(64);
    WideWord a = WideWord::fromUint64(0x1);
    WideWord b = WideWord::fromUint64(0x2);
    EXPECT_EQ(h.encode(a), h.encode(a));
    EXPECT_NE(h.encode(a), h.encode(b));
}

TEST(Hamming, RejectsOutOfRangeWidths)
{
    EXPECT_THROW(HammingSecded(0), FatalError);
    EXPECT_THROW(HammingSecded(513), FatalError);
}

} // namespace
} // namespace cppc
