/**
 * @file
 * Differential misrepair test pinning the headline numbers from
 * SNIPPETS.md §1: on >= 10k random weight-3 error patterns, SECDED
 * "corrects" — i.e. misrepairs — roughly 76% of them (asserted within
 * [0.70, 0.82]), while the LDPC line code repairs every one exactly
 * and misrepairs none.  Both codes see the *same* bit-position
 * patterns.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "protection/hamming.hh"
#include "protection/ldpc.hh"
#include "protection/secded.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

constexpr unsigned kSamples = 12000;
constexpr uint64_t kSeed = 0x3E1D5;

/** Distinct weight-3 bit triple below @p space, sorted. */
std::array<unsigned, 3>
drawTriple(Rng &rng, unsigned space)
{
    std::array<unsigned, 3> t{};
    do {
        for (auto &b : t)
            b = static_cast<unsigned>(rng.nextBelow(space));
        std::sort(t.begin(), t.end());
    } while (t[0] == t[1] || t[1] == t[2]);
    return t;
}

TEST(MisrepairDifferential, SecdedAbout76PercentLdpcExactlyZero)
{
    HammingSecded secded(64);
    auto ldpc = LdpcCodec::get(256);

    Rng rng(kSeed);
    test::ScopedSeed scoped(kSeed);

    uint64_t secded_misrepairs = 0;
    uint64_t secded_detected = 0;
    uint64_t ldpc_misrepairs = 0;
    uint64_t ldpc_repaired = 0;

    for (unsigned s = 0; s < kSamples; ++s) {
        // One weight-3 pattern over a 64-bit word, plus a random word
        // offset placing the same pattern inside the 256-bit line.
        auto t = drawTriple(rng, 64);
        uint64_t word = rng.next();
        unsigned unit = static_cast<unsigned>(rng.nextBelow(4));

        // SECDED: decode the corrupted word against the clean code.
        uint32_t code = secded.encode(WideWord::fromUint64(word));
        uint64_t bad = word ^ (1ull << t[0]) ^ (1ull << t[1]) ^
            (1ull << t[2]);
        auto res = secded.decode(WideWord::fromUint64(bad), code);
        switch (res.status) {
          case HammingSecded::Status::Clean:
            FAIL() << "weight-3 pattern decoded as clean";
          case HammingSecded::Status::CorrectedData:
          case HammingSecded::Status::CorrectedCode:
            // Any "correction" of a triple error repairs the wrong
            // thing: the word is left corrupted with a matching code.
            ++secded_misrepairs;
            break;
          case HammingSecded::Status::Detected:
            ++secded_detected;
            break;
        }

        // LDPC: the same three bit positions within one line.
        uint64_t syn = ldpc->column(64 * unit + t[0]) ^
            ldpc->column(64 * unit + t[1]) ^
            ldpc->column(64 * unit + t[2]);
        auto d = ldpc->decode(syn);
        if (d.status != LdpcCodec::Decode::Status::Repaired) {
            ++ldpc_misrepairs;
            continue;
        }
        std::vector<unsigned> flips(d.flips.begin(),
                                    d.flips.begin() + d.n_flips);
        std::sort(flips.begin(), flips.end());
        std::vector<unsigned> want = {64 * unit + t[0],
                                      64 * unit + t[1],
                                      64 * unit + t[2]};
        if (flips == want)
            ++ldpc_repaired;
        else
            ++ldpc_misrepairs;
    }

    ASSERT_EQ(secded_misrepairs + secded_detected, kSamples);
    double frac = static_cast<double>(secded_misrepairs) / kSamples;
    // Exhaustive C(64,3) enumeration measures 0.7623; random sampling
    // of >= 10k patterns stays well inside [0.70, 0.82].
    CPPC_EXPECT_EQ(frac >= 0.70 && frac <= 0.82, true);
    EXPECT_NEAR(frac, 0.76, 0.06);

    // LDPC on the identical patterns: 100% exact repair, zero
    // misrepair — the SNIPPETS.md §1 showdown row.
    EXPECT_EQ(ldpc_repaired, kSamples);
    EXPECT_EQ(ldpc_misrepairs, 0u);
}

TEST(MisrepairDifferential, SchemeLevelTripleStrikeOutcomes)
{
    // The same contrast at scheme level through a real cache: a
    // 3-bit strike in one unit leaves SECDED holding wrong data with
    // a matching code (the misrepair case) or an honest detection,
    // while LDPC restores the exact word every time.
    Rng rng(kSeed + 1);
    test::ScopedSeed scoped(kSeed + 1);
    unsigned secded_wrong = 0;
    const unsigned kTrials = 300;

    for (unsigned trial = 0; trial < kTrials; ++trial) {
        auto t = drawTriple(rng, 64);
        {
            test::Harness h(test::smallGeometry(),
                            std::make_unique<LdpcScheme>());
            h.dirtyAllRows();
            WideWord golden = h.cache->rowData(5);
            for (unsigned b : t)
                h.cache->corruptBit(5, b);
            ASSERT_FALSE(h.cache->scheme()->check(5));
            ASSERT_EQ(h.cache->scheme()->recover(5),
                      VerifyOutcome::Corrected);
            ASSERT_EQ(h.cache->rowData(5), golden);
            ASSERT_EQ(h.cache->scheme()->stats().miscorrected, 0u);
        }
        {
            test::Harness h(test::smallGeometry(),
                            std::make_unique<SecdedScheme>(8));
            h.dirtyAllRows();
            WideWord golden = h.cache->rowData(5);
            for (unsigned b : t)
                h.cache->corruptBit(5, b);
            if (h.cache->scheme()->check(5)) {
                // Triple aliased all the way to a zero syndrome.
                ++secded_wrong;
                continue;
            }
            VerifyOutcome out = h.cache->scheme()->recover(5);
            if (out == VerifyOutcome::Corrected &&
                h.cache->rowData(5) != golden)
                ++secded_wrong;
        }
    }
    // The ~76% misrepair rate must be visible at scheme level too.
    CPPC_EXPECT_EQ(secded_wrong > kTrials / 2, true);
}

} // namespace
} // namespace cppc
