/**
 * @file
 * CPPC across cache geometries: the invariant and recovery machinery
 * must be independent of size, associativity, line size and protection
 * unit width.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cppc/cppc_scheme.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

struct GeomSpec
{
    uint64_t size_bytes;
    unsigned assoc;
    unsigned line_bytes;
    unsigned unit_bytes;
};

class CppcGeometries : public ::testing::TestWithParam<GeomSpec>
{
  protected:
    CacheGeometry
    geom() const
    {
        CacheGeometry g;
        g.size_bytes = GetParam().size_bytes;
        g.assoc = GetParam().assoc;
        g.line_bytes = GetParam().line_bytes;
        g.unit_bytes = GetParam().unit_bytes;
        return g;
    }
};

TEST_P(CppcGeometries, InvariantUnderRandomTraffic)
{
    test::Harness h(geom(), std::make_unique<CppcScheme>());
    auto *s = static_cast<CppcScheme *>(h.cache->scheme());
    Rng rng(11);
    unsigned ub = geom().unit_bytes;
    std::vector<uint8_t> buf(ub);
    for (int i = 0; i < 4000; ++i) {
        Addr a = rng.nextBelow(4 * geom().size_bytes / ub) * ub;
        if (rng.chance(0.5)) {
            for (auto &b : buf)
                b = static_cast<uint8_t>(rng.next());
            h.cache->store(a, ub, buf.data());
        } else {
            h.cache->load(a, ub, nullptr);
        }
    }
    EXPECT_TRUE(s->invariantHolds());
    EXPECT_EQ(s->stats().detections, 0u);
}

TEST_P(CppcGeometries, SingleFaultsRecoverEverywhere)
{
    test::Harness h(geom(), std::make_unique<CppcScheme>());
    Rng rng(13);
    unsigned ub = geom().unit_bytes;
    std::vector<uint8_t> buf(ub);
    // Dirty a decent fraction of the cache.
    for (Addr a = 0; a < geom().size_bytes; a += ub) {
        for (auto &b : buf)
            b = static_cast<uint8_t>(rng.next());
        h.cache->store(a, ub, buf.data());
    }
    for (int rep = 0; rep < 60; ++rep) {
        Row r = static_cast<Row>(rng.nextBelow(geom().numRows()));
        if (!h.cache->rowValid(r))
            continue;
        WideWord good = h.cache->rowData(r);
        h.cache->corruptBit(
            r, static_cast<unsigned>(rng.nextBelow(ub * 8)));
        Addr a = h.cache->rowAddr(r);
        auto out = h.cache->load(a, ub, nullptr);
        ASSERT_TRUE(out.fault_detected);
        ASSERT_FALSE(out.due) << "row " << r;
        ASSERT_EQ(h.cache->rowData(r), good);
    }
}

TEST_P(CppcGeometries, VerticalPairRecovery)
{
    test::Harness h(geom(), std::make_unique<CppcScheme>());
    Rng rng(17);
    unsigned ub = geom().unit_bytes;
    std::vector<uint8_t> buf(ub);
    for (Addr a = 0; a < geom().size_bytes; a += ub) {
        for (auto &b : buf)
            b = static_cast<uint8_t>(rng.next());
        h.cache->store(a, ub, buf.data());
    }
    // Adjacent-row vertical strike at a few positions.
    for (Row r0 : {0u, 9u, geom().numRows() - 2}) {
        WideWord g0 = h.cache->rowData(r0);
        WideWord g1 = h.cache->rowData(r0 + 1);
        unsigned bit = 4;
        h.cache->corruptBit(r0, bit);
        h.cache->corruptBit(r0 + 1, bit);
        auto out = h.cache->load(h.cache->rowAddr(r0), ub, nullptr);
        ASSERT_FALSE(out.due) << "r0 " << r0;
        ASSERT_EQ(h.cache->rowData(r0), g0);
        ASSERT_EQ(h.cache->rowData(r0 + 1), g1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CppcGeometries,
    ::testing::Values(
        GeomSpec{1024, 1, 32, 8},          // tiny direct-mapped
        GeomSpec{4096, 4, 32, 8},          // 4-way
        GeomSpec{8192, 2, 64, 8},          // 64-byte lines
        GeomSpec{8192, 2, 64, 16},         // 16-byte units
        GeomSpec{32 * 1024, 2, 32, 8},     // the paper's L1
        GeomSpec{16 * 1024, 8, 32, 32},    // block units, 8-way
        GeomSpec{64 * 1024, 16, 64, 64}),  // wide everything
    [](const auto &info) {
        const GeomSpec &g = info.param;
        return std::to_string(g.size_bytes / 1024) + "k_a" +
            std::to_string(g.assoc) + "_l" +
            std::to_string(g.line_bytes) + "_u" +
            std::to_string(g.unit_bytes);
    });

} // namespace
} // namespace cppc
