#include <gtest/gtest.h>

#include "cache/geometry.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

CacheGeometry
paperL1()
{
    // Table 1: 32KB, 2-way, 32-byte lines, 64-bit protection words.
    CacheGeometry g;
    g.size_bytes = 32 * 1024;
    g.assoc = 2;
    g.line_bytes = 32;
    g.unit_bytes = 8;
    return g;
}

CacheGeometry
paperL2()
{
    // Table 1: 1MB, 4-way, 32-byte lines; protection unit = L1 block.
    CacheGeometry g;
    g.size_bytes = 1024 * 1024;
    g.assoc = 4;
    g.line_bytes = 32;
    g.unit_bytes = 32;
    return g;
}

TEST(Geometry, PaperL1Derived)
{
    CacheGeometry g = paperL1();
    g.validate();
    EXPECT_EQ(g.numSets(), 512u);
    EXPECT_EQ(g.unitsPerLine(), 4u);
    EXPECT_EQ(g.numLines(), 1024u);
    EXPECT_EQ(g.numRows(), 4096u);
    EXPECT_EQ(g.dataBits(), 32u * 1024 * 8);
}

TEST(Geometry, PaperL2Derived)
{
    CacheGeometry g = paperL2();
    g.validate();
    EXPECT_EQ(g.numSets(), 8192u);
    EXPECT_EQ(g.unitsPerLine(), 1u);
    EXPECT_EQ(g.numRows(), 32768u);
}

TEST(Geometry, AddressSlicing)
{
    CacheGeometry g = paperL1();
    Addr a = 0x12345678;
    EXPECT_EQ(g.lineAddr(a), a & ~0x1full);
    EXPECT_EQ(g.setIndex(a), (a / 32) % 512);
    EXPECT_EQ(g.tagOf(a), a / 32 / 512);
    EXPECT_EQ(g.unitInLine(a), (a % 32) / 8);
    EXPECT_EQ(g.byteInUnit(a), a % 8);
}

TEST(Geometry, LineAddrFromTagRoundTrip)
{
    CacheGeometry g = paperL1();
    for (Addr a : {0x0ull, 0x1234560ull, 0xdeadbea0ull, 0xffffffe0ull}) {
        Addr la = g.lineAddr(a);
        EXPECT_EQ(g.lineAddrFromTag(g.tagOf(la), g.setIndex(la)), la);
    }
}

TEST(Geometry, RowOfLayout)
{
    CacheGeometry g = paperL1();
    // Set-major, then way, then unit: consecutive units of a line are
    // physically adjacent rows.
    EXPECT_EQ(g.rowOf(0, 0, 0), 0u);
    EXPECT_EQ(g.rowOf(0, 0, 3), 3u);
    EXPECT_EQ(g.rowOf(0, 1, 0), 4u);
    EXPECT_EQ(g.rowOf(1, 0, 0), 8u);
    EXPECT_EQ(g.rowOf(511, 1, 3), g.numRows() - 1);
}

TEST(Geometry, ValidateRejectsBadShapes)
{
    CacheGeometry g = paperL1();
    g.size_bytes = 1000; // not a power of two
    EXPECT_THROW(g.validate(), FatalError);

    g = paperL1();
    g.unit_bytes = 64;
    g.line_bytes = 32; // unit > line
    EXPECT_THROW(g.validate(), FatalError);

    g = paperL1();
    g.assoc = 0;
    EXPECT_THROW(g.validate(), FatalError);
}

} // namespace
} // namespace cppc
