/**
 * @file
 * The cross-scheme contract: every protection scheme, run through the
 * same battery, must be functionally transparent when fault-free,
 * never falsely detect, always handle clean faults, and never turn a
 * single-bit dirty fault into *silent* corruption.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <map>
#include <string>

#include "cppc/cppc_scheme.hh"
#include "state/state_io.hh"
#include "protection/chiprepair.hh"
#include "protection/icr.hh"
#include "protection/ldpc.hh"
#include "protection/memory_mapped_ecc.hh"
#include "protection/parity.hh"
#include "protection/replication_cache.hh"
#include "protection/secded.hh"
#include "protection/two_d_parity.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::ScopedSeed;
using test::smallGeometry;

/** How a scheme handles a single-bit fault in dirty data. */
enum class DirtyFix
{
    Always,    // guaranteed correction
    Never,     // always a DUE (detection-only)
    Sometimes, // depends on internal state (ICR's replica slot)
};

struct SchemeSpec
{
    const char *name;
    std::function<std::unique_ptr<ProtectionScheme>()> make;
    DirtyFix dirty_fix;
    // True when resyncRow() fully re-keys the row's stored code from
    // current data — the schemes whose recover() or store path rewrites
    // stored code and which therefore override the default no-op.
    // Only these can restore an image older than the last store.
    bool full_rekey_resync = false;
};

const SchemeSpec kSpecs[] = {
    {"parity1d", [] { return std::make_unique<OneDimParityScheme>(8); },
     DirtyFix::Never},
    {"secded", [] { return std::make_unique<SecdedScheme>(8); },
     DirtyFix::Always, /*full_rekey_resync=*/true},
    {"parity2d", [] { return std::make_unique<TwoDParityScheme>(8); },
     DirtyFix::Always},
    {"cppc", [] { return std::make_unique<CppcScheme>(); },
     DirtyFix::Always},
    {"icr", [] { return std::make_unique<IcrScheme>(8); },
     DirtyFix::Sometimes},
    {"mmecc",
     [] { return std::make_unique<MemoryMappedEccScheme>(8); },
     DirtyFix::Always},
    {"replcache",
     [] { return std::make_unique<ReplicationCacheScheme>(64, 8); },
     DirtyFix::Sometimes},
    // Both new schemes guarantee exact repair of any single-bit fault
    // (LDPC's distance-7 window, chiprepair's single-symbol decode),
    // so they face the full Always battery.
    {"ldpc", [] { return std::make_unique<LdpcScheme>(); },
     DirtyFix::Always, /*full_rekey_resync=*/true},
    {"chiprepair", [] { return std::make_unique<ChipRepairScheme>(8); },
     DirtyFix::Always, /*full_rekey_resync=*/true},
};

class SchemeConformance : public ::testing::TestWithParam<SchemeSpec>
{
};

TEST_P(SchemeConformance, FunctionallyTransparent)
{
    // The protected cache must behave exactly like a golden memory
    // under arbitrary fault-free traffic.
    Harness h(smallGeometry(), GetParam().make());
    Rng rng(101);
    ScopedSeed scoped(101);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 6000; ++i) {
        Addr a = rng.nextBelow(1024) * 8;
        if (rng.chance(0.45)) {
            uint64_t v = rng.next();
            golden[a] = v;
            h.cache->storeWord(a, v);
        } else {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            CPPC_ASSERT_EQ(h.cache->loadWord(a), expect) << "iter " << i;
        }
    }
    CPPC_EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
}

TEST_P(SchemeConformance, PartialStoresTransparent)
{
    Harness h(smallGeometry(), GetParam().make());
    Rng rng(103);
    ScopedSeed scoped(103);
    std::map<Addr, uint8_t> golden;
    for (int i = 0; i < 3000; ++i) {
        Addr a = rng.nextBelow(1024 * 8);
        if (rng.chance(0.5)) {
            uint8_t v = static_cast<uint8_t>(rng.next());
            golden[a] = v;
            h.cache->store(a, 1, &v);
        } else {
            uint8_t out = 0;
            h.cache->load(a, 1, &out);
            uint8_t expect = golden.count(a) ? golden[a] : 0;
            CPPC_ASSERT_EQ(out, expect) << "iter " << i;
        }
    }
    EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
}

TEST_P(SchemeConformance, CleanSingleBitFaultAlwaysHandled)
{
    Harness h(smallGeometry(), GetParam().make());
    uint8_t seed[8] = {0x42, 0x17, 0x99, 0x01, 0xfe, 0x20, 0x3c, 0x77};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    Rng rng(107);
    ScopedSeed scoped(107);
    for (int rep = 0; rep < 30; ++rep) {
        h.cache->corruptBit(0, static_cast<unsigned>(rng.nextBelow(64)));
        auto out = h.cache->load(0x0, 8, nullptr);
        CPPC_ASSERT_TRUE(out.fault_detected);
        CPPC_ASSERT_FALSE(out.due);
        CPPC_ASSERT_EQ(h.cache->loadWord(0x0), good);
    }
}

TEST_P(SchemeConformance, DirtySingleBitFaultNeverSilent)
{
    Harness h(smallGeometry(), GetParam().make());
    Rng rng(109);
    ScopedSeed scoped(109);
    for (int rep = 0; rep < 40; ++rep) {
        Addr a = rng.nextBelow(128) * 8;
        uint64_t v = rng.next();
        h.cache->storeWord(a, v);
        Row r = 0;
        bool found = false;
        h.cache->forEachValidRow([&](Row row, bool) {
            if (!found && h.cache->rowAddr(row) == a) {
                r = row;
                found = true;
            }
        });
        CPPC_ASSERT_TRUE(found);
        h.cache->corruptBit(r, static_cast<unsigned>(rng.nextBelow(64)));
        auto out = h.cache->load(a, 8, nullptr);
        CPPC_ASSERT_TRUE(out.fault_detected)
            << "scheme " << GetParam().name;
        switch (GetParam().dirty_fix) {
          case DirtyFix::Always:
            CPPC_ASSERT_FALSE(out.due);
            CPPC_ASSERT_EQ(h.cache->loadWord(a), v);
            break;
          case DirtyFix::Never:
            // detected-uncorrectable, not silent
            CPPC_ASSERT_TRUE(out.due);
            h.cache->pokeRowData(r, WideWord::fromUint64(v, 8));
            break;
          case DirtyFix::Sometimes:
            // Either corrected exactly, or an honest DUE — never a
            // silently wrong value.
            if (out.due)
                h.cache->pokeRowData(r, WideWord::fromUint64(v, 8));
            else
                CPPC_ASSERT_EQ(h.cache->loadWord(a), v);
            break;
        }
    }
}

TEST_P(SchemeConformance, EvictionChainsPreserveData)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, GetParam().make());
    // Three-way conflict churn through every set.
    std::map<Addr, uint64_t> golden;
    Rng rng(113);
    ScopedSeed scoped(113);
    for (int round = 0; round < 3; ++round) {
        for (Addr base = 0; base < g.size_bytes; base += 8) {
            Addr a = base + round * g.size_bytes;
            uint64_t v = rng.next();
            golden[a] = v;
            h.cache->storeWord(a, v);
        }
    }
    for (const auto &[a, v] : golden)
        CPPC_ASSERT_EQ(h.cache->loadWord(a), v);
    CPPC_EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
}

TEST_P(SchemeConformance, StatsResetWorks)
{
    Harness h(smallGeometry(), GetParam().make());
    h.cache->storeWord(0x0, 1);
    h.cache->corruptBit(0, 2);
    h.cache->load(0x0, 8, nullptr);
    EXPECT_GT(h.cache->scheme()->stats().detections, 0u);
    h.cache->scheme()->resetStats();
    EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
    EXPECT_EQ(h.cache->scheme()->stats().totalRecoveries(), 0u);
}

TEST_P(SchemeConformance, ReportsNameAndArea)
{
    Harness h(smallGeometry(), GetParam().make());
    EXPECT_FALSE(h.cache->scheme()->name().empty());
    EXPECT_GT(h.cache->scheme()->codeBitsTotal(), 0u);
    EXPECT_GE(h.cache->scheme()->bitlineOverheadFactor(), 1.0);
}

TEST_P(SchemeConformance, FlushAfterFaultRecoveryIsConsistent)
{
    Harness h(smallGeometry(), GetParam().make());
    Rng rng(127);
    ScopedSeed scoped(127);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 500; ++i) {
        Addr a = rng.nextBelow(256) * 8;
        uint64_t v = rng.next();
        golden[a] = v;
        h.cache->storeWord(a, v);
    }
    if (GetParam().dirty_fix == DirtyFix::Always) {
        // Strike a few dirty rows and let loads repair them.
        for (int rep = 0; rep < 10; ++rep) {
            Row r = static_cast<Row>(rng.nextBelow(128));
            if (!h.cache->rowValid(r) || !h.cache->rowDirty(r))
                continue;
            Addr a = h.cache->rowAddr(r);
            h.cache->corruptBit(r,
                                static_cast<unsigned>(rng.nextBelow(64)));
            h.cache->load(a, 8, nullptr);
        }
    }
    h.cache->flushAll();
    for (const auto &[a, v] : golden) {
        uint8_t buf[8];
        h.mem.peek(a, buf, 8);
        uint64_t got;
        std::memcpy(&got, buf, 8);
        CPPC_ASSERT_EQ(got, v) << "addr " << a;
    }
}

TEST_P(SchemeConformance, SaveStateRoundTripsWithIdenticalDecode)
{
    // Serialise a populated cache + scheme, restore into a freshly
    // constructed identically-configured pair, and require the clone
    // to be behaviourally indistinguishable — same contents, and the
    // same detect/correct decisions on the same injected faults.
    //
    // Traffic stays inside the direct-mapped footprint (no evictions),
    // so the entire dynamic state lives in the cache + scheme and the
    // backing memories of original and clone both remain empty.
    Harness h1(smallGeometry(), GetParam().make());
    Rng rng(131);
    ScopedSeed scoped(131);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 1500; ++i) {
        Addr a = rng.nextBelow(128) * 8;
        uint64_t v = rng.next();
        golden[a] = v;
        h1.cache->storeWord(a, v);
    }

    StateWriter w;
    h1.cache->saveState(w);

    Harness h2(smallGeometry(), GetParam().make());
    StateReader r(w.image());
    h2.cache->loadState(r);

    for (const auto &[a, v] : golden)
        CPPC_ASSERT_EQ(h2.cache->loadWord(a), v);
    CPPC_EXPECT_EQ(h1.cache->scheme()->stats().detections,
                   h2.cache->scheme()->stats().detections);

    // Identical decode behaviour: the same strike against original and
    // clone must produce the same verdict and the same final word.
    for (int rep = 0; rep < 12; ++rep) {
        Row row = static_cast<Row>(rng.nextBelow(128));
        unsigned bit = static_cast<unsigned>(rng.nextBelow(64));
        CPPC_ASSERT_TRUE(h1.cache->rowValid(row));
        Addr a = h1.cache->rowAddr(row);
        h1.cache->corruptBit(row, bit);
        h2.cache->corruptBit(row, bit);
        auto o1 = h1.cache->load(a, 8, nullptr);
        auto o2 = h2.cache->load(a, 8, nullptr);
        CPPC_ASSERT_EQ(o1.fault_detected, o2.fault_detected);
        CPPC_ASSERT_EQ(o1.due, o2.due);
        CPPC_ASSERT_EQ(h1.cache->loadWord(a), h2.cache->loadWord(a));
        // Heal any DUE the same way on both sides so later strikes in
        // this loop start from aligned state again.
        if (o1.due) {
            WideWord fix = WideWord::fromUint64(golden[a], 8);
            h1.cache->pokeRowData(row, fix);
            h2.cache->pokeRowData(row, fix);
        }
    }
    CPPC_EXPECT_EQ(h1.cache->scheme()->stats().detections,
                   h2.cache->scheme()->stats().detections);
}

TEST_P(SchemeConformance, SaveStateRejectsTruncationAndCorruption)
{
    Harness h(smallGeometry(), GetParam().make());
    Rng rng(139);
    ScopedSeed scoped(139);
    for (int i = 0; i < 200; ++i)
        h.cache->storeWord(rng.nextBelow(128) * 8, rng.next());
    StateWriter w;
    h.cache->saveState(w);
    const std::string image = w.image();
    const size_t magic_len = std::strlen(kStateMagic);
    ASSERT_GT(image.size(), magic_len + 64);

    // Truncation anywhere must fail loudly, never half-load silently.
    // Sampled stride keeps the quadratic substr cost in check.
    for (size_t n = magic_len; n < image.size(); n += 61) {
        std::string cut = image.substr(0, n);
        Harness fresh(smallGeometry(), GetParam().make());
        EXPECT_THROW(
            {
                StateReader r(cut);
                fresh.cache->loadState(r);
            },
            StateError)
            << "truncated to " << n << " of " << image.size();
    }

    // Bit flips deep inside the image land in CRC-sealed payload; the
    // seal must catch every one of them.
    for (int permille : {300, 500, 700, 900}) {
        std::string bad = image;
        size_t pos = magic_len +
            (image.size() - magic_len) * permille / 1000;
        bad[pos] ^= 0x10;
        Harness fresh(smallGeometry(), GetParam().make());
        EXPECT_THROW(
            {
                StateReader r(bad);
                fresh.cache->loadState(r);
            },
            StateError)
            << "bit flip at byte " << pos << " not detected";
    }
}

TEST_P(SchemeConformance, RestoreWithResyncKeepsTrialsIndependent)
{
    // The campaign contract behind ProtectionScheme::resyncRow():
    // after a strike and whatever recover() did with it, poking the
    // trusted golden data back and calling resyncRow() must leave
    // every row self-consistent.  Any scheme whose recover() rewrites
    // stored code from suspect data (SECDED's CorrectedCode branch
    // re-encodes a misdecoded multi-bit word) or whose stored code can
    // drift from the restore image between snapshot and restore (LDPC
    // and chiprepair re-key on every store) must override resyncRow(),
    // or trial N's misrepair leaks into trial N+1.  This test is the
    // behavioural anchor for cppc-analyze rule S1's companion check:
    // deleting any resyncRow override must fail here.
    Harness h(smallGeometry(), GetParam().make());
    Rng rng(149);
    ScopedSeed scoped(149);
    std::map<Addr, uint64_t> golden_words;
    for (int i = 0; i < 400; ++i) {
        Addr a = rng.nextBelow(128) * 8;
        uint64_t v = rng.next();
        golden_words[a] = v;
        h.cache->storeWord(a, v);
    }
    ProtectionScheme *scheme = h.cache->scheme();
    for (int trial = 0; trial < 120; ++trial) {
        std::vector<std::pair<Row, WideWord>> golden;
        h.cache->forEachValidRow([&](Row row, bool) {
            golden.emplace_back(row, h.cache->rowData(row));
        });
        ASSERT_FALSE(golden.empty());
        Row r = golden[rng.nextBelow(golden.size())].first;
        unsigned nbits = 1 + static_cast<unsigned>(rng.nextBelow(3));
        for (unsigned b = 0; b < nbits; ++b)
            h.cache->corruptBit(r,
                                static_cast<unsigned>(rng.nextBelow(64)));
        // Let the scheme detect / correct / misrepair as it will.
        h.cache->load(h.cache->rowAddr(r), 8, nullptr);
        // For schemes whose resyncRow() fully re-keys stored code,
        // push further: post-snapshot stores move both the data and the
        // code away from the golden image (the versioned save-state
        // shape, where the restore target is older than the current
        // contents).  Schemes with the no-op default only guarantee
        // restore-to-latest, so they skip this.
        if (GetParam().full_rekey_resync) {
            for (int s = 0; s < 3; ++s) {
                auto it = golden_words.begin();
                std::advance(it,
                             static_cast<long>(
                                 rng.nextBelow(golden_words.size())));
                h.cache->storeWord(it->first, rng.next());
            }
        }
        // Restore exactly the way Campaign::restoreRows does.
        for (const auto &[row, data] : golden) {
            h.cache->pokeRowData(row, data);
            scheme->resyncRow(row);
        }
        h.cache->forEachValidRow([&](Row row, bool) {
            CPPC_ASSERT_TRUE(scheme->check(row))
                << "scheme " << GetParam().name << " trial " << trial
                << " row " << row
                << " left inconsistent after restore+resync";
        });
    }
    // With every trial unwound, reads must be transparent again.
    for (const auto &[a, v] : golden_words)
        CPPC_ASSERT_EQ(h.cache->loadWord(a), v);
}

TEST(SchemeState, RejectsForeignSchemeSection)
{
    // A SCHM section written by one scheme must refuse to load into a
    // differently-named one even when both parse structurally.
    Harness parity(smallGeometry(),
                   std::make_unique<OneDimParityScheme>(8));
    parity.cache->storeWord(0x0, 42);
    StateWriter w;
    parity.cache->scheme()->saveState(w);

    Harness secded(smallGeometry(), std::make_unique<SecdedScheme>(8));
    StateReader r(w.image());
    EXPECT_THROW(secded.cache->scheme()->loadState(r), StateError);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeConformance,
                         ::testing::ValuesIn(kSpecs),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

} // namespace
} // namespace cppc
