#include <gtest/gtest.h>

#include "cppc/tag_cppc.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

constexpr unsigned kEntries = 64;
constexpr unsigned kEntryBits = 28; // tag + state bits

TagCppc
filledArray(uint64_t seed = 1)
{
    TagCppc tags(kEntries, kEntryBits);
    Rng rng(seed);
    for (unsigned i = 0; i < kEntries; ++i)
        tags.fill(i, rng.next() & ((1ull << kEntryBits) - 1));
    return tags;
}

TEST(TagCppc, FillReadRoundTrip)
{
    TagCppc tags(kEntries, kEntryBits);
    tags.fill(3, 0xABCDE);
    EXPECT_TRUE(tags.valid(3));
    EXPECT_EQ(tags.read(3), 0xABCDEull);
    EXPECT_FALSE(tags.valid(4));
}

TEST(TagCppc, ValueMaskedToEntryWidth)
{
    TagCppc tags(kEntries, 16);
    tags.fill(0, 0xFFFFFFFFull);
    EXPECT_EQ(tags.read(0), 0xFFFFull);
}

TEST(TagCppc, InvariantUnderFillReplaceInvalidate)
{
    TagCppc tags(kEntries, kEntryBits);
    Rng rng(5);
    // Mimic a live tag array: fills, replacements, invalidations.
    for (int i = 0; i < 5000; ++i) {
        unsigned idx = static_cast<unsigned>(rng.nextBelow(kEntries));
        uint64_t v = rng.next() & ((1ull << kEntryBits) - 1);
        if (!tags.valid(idx))
            tags.fill(idx, v);
        else if (rng.chance(0.8))
            tags.replace(idx, v);
        else
            tags.invalidate(idx);
        if (i % 500 == 0) {
            ASSERT_TRUE(tags.invariantHolds()) << "iter " << i;
        }
    }
    EXPECT_TRUE(tags.invariantHolds());
}

TEST(TagCppc, SingleBitFaultCorrectedEverywhere)
{
    TagCppc tags = filledArray();
    Rng rng(7);
    for (int rep = 0; rep < 200; ++rep) {
        unsigned idx = static_cast<unsigned>(rng.nextBelow(kEntries));
        unsigned bit = static_cast<unsigned>(rng.nextBelow(kEntryBits));
        uint64_t good = tags.read(idx);
        tags.corruptBit(idx, bit);
        ASSERT_FALSE(tags.check(idx));
        ASSERT_TRUE(tags.recover());
        ASSERT_EQ(tags.read(idx), good);
        ASSERT_TRUE(tags.invariantHolds());
    }
}

TEST(TagCppc, MultiBitFaultInOneEntryCorrected)
{
    TagCppc tags = filledArray(11);
    uint64_t good = tags.read(9);
    tags.corruptBit(9, 1);
    tags.corruptBit(9, 10);
    tags.corruptBit(9, 20);
    EXPECT_TRUE(tags.recover());
    EXPECT_EQ(tags.read(9), good);
}

TEST(TagCppc, VerticalSpatialFaultCorrectedViaShifting)
{
    TagCppc tags = filledArray(13);
    uint64_t g4 = tags.read(4), g5 = tags.read(5);
    tags.corruptBit(4, 6);
    tags.corruptBit(5, 6);
    EXPECT_TRUE(tags.recover());
    EXPECT_EQ(tags.read(4), g4);
    EXPECT_EQ(tags.read(5), g5);
    EXPECT_EQ(tags.stats().corrected, 2u);
}

TEST(TagCppc, VerticalFaultFailsWithoutShifting)
{
    TagCppc::Config cfg;
    cfg.byte_shifting = false;
    TagCppc tags(kEntries, kEntryBits, cfg);
    Rng rng(17);
    for (unsigned i = 0; i < kEntries; ++i)
        tags.fill(i, rng.next() & ((1ull << kEntryBits) - 1));
    tags.corruptBit(4, 6);
    tags.corruptBit(5, 6);
    EXPECT_FALSE(tags.recover());
    EXPECT_EQ(tags.stats().due, 1u);
}

TEST(TagCppc, SameClassDoubleFaultIsDue)
{
    TagCppc tags = filledArray(19);
    tags.corruptBit(2, 3);
    tags.corruptBit(2 + 8, 3); // same rotation class
    EXPECT_FALSE(tags.recover());
}

TEST(TagCppc, MorePairsSplitClasses)
{
    TagCppc::Config cfg;
    cfg.pairs = 8;
    cfg.byte_shifting = false;
    TagCppc tags(kEntries, kEntryBits, cfg);
    Rng rng(23);
    for (unsigned i = 0; i < kEntries; ++i)
        tags.fill(i, rng.next() & ((1ull << kEntryBits) - 1));
    uint64_t g0 = tags.read(0), g1 = tags.read(1);
    tags.corruptBit(0, 12);
    tags.corruptBit(1, 12);
    EXPECT_TRUE(tags.recover());
    EXPECT_EQ(tags.read(0), g0);
    EXPECT_EQ(tags.read(1), g1);
}

TEST(TagCppc, RecoveryAfterChurn)
{
    TagCppc tags(kEntries, kEntryBits);
    Rng rng(29);
    for (int i = 0; i < 3000; ++i) {
        unsigned idx = static_cast<unsigned>(rng.nextBelow(kEntries));
        uint64_t v = rng.next() & ((1ull << kEntryBits) - 1);
        if (!tags.valid(idx))
            tags.fill(idx, v);
        else
            tags.replace(idx, v);
    }
    unsigned idx = 37;
    uint64_t good = tags.read(idx);
    tags.corruptBit(idx, 22);
    EXPECT_TRUE(tags.recover());
    EXPECT_EQ(tags.read(idx), good);
}

TEST(TagCppc, OverheadAccounting)
{
    TagCppc tags(kEntries, kEntryBits);
    // 64 entries x 8 parity bits + one pair of 64-bit registers (+2
    // register parity bits).
    EXPECT_EQ(tags.overheadBits(), 64u * 8 + 2 * 65);
}

TEST(TagCppc, RejectsBadConfigs)
{
    EXPECT_THROW(TagCppc(64, 0), FatalError);
    EXPECT_THROW(TagCppc(64, 65), FatalError);
    EXPECT_THROW(TagCppc(4, 28), FatalError); // fewer entries than classes
    TagCppc::Config bad;
    bad.pairs = 3;
    EXPECT_THROW(TagCppc(64, 28, bad), FatalError);
}

} // namespace
} // namespace cppc
