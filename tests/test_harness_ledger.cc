/**
 * @file
 * WorkLedger unit and integration tests: manifest binding, the
 * claim/heartbeat/publish/reclaim lease protocol, dead-worker lease
 * recovery, clock-skew immunity (liveness is a beat observed to
 * change, never a timestamp), tolerance of in-flight temp siblings and
 * torn records, and two concurrent RunControllers merging one ledger
 * bit-identically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include "harness/ledger.hh"
#include "harness/run_controller.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

/** A unique scratch ledger directory, scrubbed on scope exit. */
class TempLedgerDir
{
  public:
    explicit TempLedgerDir(const std::string &tag)
        : path_(testing::TempDir() + "cppc_ledger_" + tag + "_" +
                std::to_string(::getpid()))
    {
        scrub();
    }
    ~TempLedgerDir() { scrub(); }
    const std::string &path() const { return path_; }

  private:
    void
    scrub()
    {
        DIR *d = ::opendir(path_.c_str());
        if (d) {
            while (struct dirent *ent = ::readdir(d)) {
                std::string name = ent->d_name;
                if (name != "." && name != "..")
                    ::unlink((path_ + "/" + name).c_str());
            }
            ::closedir(d);
        }
        ::rmdir(path_.c_str());
    }

    std::string path_;
};

JournalRecord
okRecord(const std::string &key, const std::string &payload)
{
    JournalRecord rec;
    rec.key = key;
    rec.status = CellStatus::Ok;
    rec.attempts = 1;
    rec.payload = payload;
    return rec;
}

TEST(Ledger, ManifestBindsKindAndConfig)
{
    TempLedgerDir tmp("manifest");
    WorkLedger a(tmp.path(), "sweep", "cfg=a", "w1");
    // Same binding reopens fine (a second worker joining).
    WorkLedger b(tmp.path(), "sweep", "cfg=a", "w2");
    EXPECT_TRUE(b.loadDone().empty());
    // A different config or kind is a foreign grid: joining must be
    // impossible, exactly like resuming a foreign journal.
    EXPECT_THROW(WorkLedger(tmp.path(), "sweep", "cfg=b", "w3"),
                 FatalError);
    EXPECT_THROW(WorkLedger(tmp.path(), "campaign", "cfg=a", "w3"),
                 FatalError);
}

TEST(Ledger, ClaimLifecycle)
{
    TempLedgerDir tmp("claim");
    WorkLedger mine(tmp.path(), "sweep", "cfg", "w1");
    WorkLedger peer(tmp.path(), "sweep", "cfg", "w2");

    EXPECT_EQ(mine.tryClaim("cell:a"), WorkLedger::Claim::Acquired);
    EXPECT_EQ(mine.heldCount(), 1u);
    // The filesystem arbitrates: the peer (and a re-claim by the
    // holder itself) sees Busy.
    EXPECT_EQ(peer.tryClaim("cell:a"), WorkLedger::Claim::Busy);
    EXPECT_EQ(mine.tryClaim("cell:a"), WorkLedger::Claim::Busy);

    auto lease = peer.readLease("cell:a");
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->worker, "w1");
    EXPECT_EQ(lease->beat, 1u);

    ASSERT_TRUE(mine.publish(okRecord("cell:a", "payload=1")));
    EXPECT_EQ(mine.heldCount(), 0u);
    // Publishing released the lease and committed the record.
    EXPECT_FALSE(peer.readLease("cell:a").has_value());
    EXPECT_EQ(peer.tryClaim("cell:a"), WorkLedger::Claim::Done);

    auto done = peer.loadDone();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done.at("cell:a").status, CellStatus::Ok);
    EXPECT_EQ(done.at("cell:a").payload, "payload=1");
}

TEST(Ledger, HeartbeatAdvancesBeat)
{
    TempLedgerDir tmp("beat");
    WorkLedger mine(tmp.path(), "sweep", "cfg", "w1");
    WorkLedger peer(tmp.path(), "sweep", "cfg", "w2");

    ASSERT_EQ(mine.tryClaim("cell:a"), WorkLedger::Claim::Acquired);
    ASSERT_EQ(peer.readLease("cell:a")->beat, 1u);
    mine.heartbeat();
    EXPECT_EQ(peer.readLease("cell:a")->beat, 2u);
    mine.heartbeat();
    EXPECT_EQ(peer.readLease("cell:a")->beat, 3u);
}

TEST(Ledger, DeadWorkerLeaseIsReclaimable)
{
    TempLedgerDir tmp("reclaim");
    WorkLedger peer(tmp.path(), "sweep", "cfg", "rescuer");
    {
        // The victim claims a cell and "dies": its WorkLedger goes out
        // of scope without publishing, so the lease file stays behind
        // with a frozen beat — exactly what a SIGKILL leaves.
        WorkLedger victim(tmp.path(), "sweep", "cfg", "victim");
        ASSERT_EQ(victim.tryClaim("cell:a"),
                  WorkLedger::Claim::Acquired);
    }
    ASSERT_EQ(peer.tryClaim("cell:a"), WorkLedger::Claim::Busy);
    auto lease = peer.readLease("cell:a");
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->worker, "victim");

    // The staleness *observation* (unchanged beat over the timeout
    // window) belongs to the controller; once made, the reclaim is a
    // break + ordinary O_EXCL race.
    peer.breakLease("cell:a");
    EXPECT_EQ(peer.tryClaim("cell:a"), WorkLedger::Claim::Acquired);
    ASSERT_TRUE(peer.publish(okRecord("cell:a", "payload=2")));
    EXPECT_EQ(peer.loadDone().at("cell:a").payload, "payload=2");
}

TEST(Ledger, ReclaimedHolderDropsLeaseOnNextHeartbeat)
{
    TempLedgerDir tmp("dropped");
    WorkLedger slow(tmp.path(), "sweep", "cfg", "slow");
    WorkLedger fast(tmp.path(), "sweep", "cfg", "fast");

    ASSERT_EQ(slow.tryClaim("cell:a"), WorkLedger::Claim::Acquired);
    // A peer declares `slow` dead (it was merely descheduled) and
    // takes the cell over.
    fast.breakLease("cell:a");
    ASSERT_EQ(fast.tryClaim("cell:a"), WorkLedger::Claim::Acquired);

    // The not-actually-dead holder notices at its next heartbeat and
    // stops refreshing a lease that is no longer its own.
    EXPECT_EQ(slow.heldCount(), 1u);
    slow.heartbeat();
    EXPECT_EQ(slow.heldCount(), 0u);
    EXPECT_EQ(fast.readLease("cell:a")->worker, "fast");

    // Both may still publish; the records are byte-identical by
    // determinism, so either order commits the same bytes.
    ASSERT_TRUE(slow.publish(okRecord("cell:a", "payload=x")));
    ASSERT_TRUE(fast.publish(okRecord("cell:a", "payload=x")));
    EXPECT_EQ(fast.loadDone().at("cell:a").payload, "payload=x");
}

TEST(Ledger, ClockSkewCannotFakeLiveness)
{
    TempLedgerDir tmp("skew");
    WorkLedger peer(tmp.path(), "sweep", "cfg", "rescuer");
    {
        WorkLedger victim(tmp.path(), "sweep", "cfg", "victim");
        ASSERT_EQ(victim.tryClaim("cell:a"),
                  WorkLedger::Claim::Acquired);
    }
    // A peer with a wildly skewed clock stamped the lease file a day
    // into the future.  Liveness is a beat observed to change on the
    // watcher's own steady clock — mtimes are never consulted — so
    // the abandoned lease is still detected and reclaimed.
    std::string lease_file = tmp.path() + "/";
    {
        DIR *d = ::opendir(tmp.path().c_str());
        ASSERT_NE(d, nullptr);
        while (struct dirent *ent = ::readdir(d)) {
            std::string name = ent->d_name;
            if (name.rfind("lease.", 0) == 0)
                lease_file += name;
        }
        ::closedir(d);
    }
    struct stat st{};
    ASSERT_EQ(::stat(lease_file.c_str(), &st), 0);
    struct utimbuf future{};
    future.actime = st.st_atime + 86'400;
    future.modtime = st.st_mtime + 86'400;
    ASSERT_EQ(::utime(lease_file.c_str(), &future), 0);

    auto lease = peer.readLease("cell:a");
    ASSERT_TRUE(lease.has_value());
    EXPECT_EQ(lease->beat, 1u) << "beat, not mtime, carries liveness";
    peer.breakLease("cell:a");
    EXPECT_EQ(peer.tryClaim("cell:a"), WorkLedger::Claim::Acquired);
}

TEST(Ledger, LoadDoneIgnoresTempSiblingsAndTornRecords)
{
    TempLedgerDir tmp("junk");
    WorkLedger ledger(tmp.path(), "sweep", "cfg", "w1");
    ASSERT_EQ(ledger.tryClaim("cell:a"), WorkLedger::Claim::Acquired);
    ASSERT_TRUE(ledger.publish(okRecord("cell:a", "payload=1")));

    // An atomicWriteFile temp sibling caught mid-write shares the
    // "cell." prefix but has a non-hex suffix; readers must skip it.
    std::ofstream(tmp.path() + "/cell.6365: ab.tmp.123") << "partial";
    std::ofstream(tmp.path() + "/cell.православие") << "junk";
    // A torn record: valid name, body cut mid-line (bad CRC).
    std::ofstream(tmp.path() + "/cell.6365")
        << "cell ce ok 1 payload=9 crc=0000";

    auto done = ledger.loadDone();
    ASSERT_EQ(done.size(), 1u) << "only the sealed record survives";
    EXPECT_EQ(done.at("cell:a").payload, "payload=1");
}

// ------------------------------------------------- controller integration

std::vector<WorkUnit>
tenUnits(std::atomic<int> *executions = nullptr)
{
    std::vector<WorkUnit> units;
    for (int i = 0; i < 10; ++i) {
        WorkUnit u;
        u.key = strfmt("unit:%d", i);
        u.work = [i, executions](const std::atomic<bool> &) {
            if (executions)
                executions->fetch_add(1, std::memory_order_relaxed);
            return strfmt("value=%d", i * i);
        };
        units.push_back(std::move(u));
    }
    return units;
}

HarnessOptions
ledgerOptions(const std::string &dir, const std::string &worker)
{
    HarnessOptions h;
    h.ledger_dir = dir;
    h.worker_id = worker;
    h.jobs = 2;
    h.use_stop_token = false;
    h.ledger_poll_s = 0.02;
    return h;
}

std::string
fingerprint(const HarnessReport &report)
{
    std::string s;
    for (const UnitResult &r : report.results)
        s += r.key + "=" + cellStatusName(r.status) + ":" + r.payload +
             "\n";
    return s;
}

TEST(Ledger, ConcurrentControllersMergeBitIdentically)
{
    TempLedgerDir tmp("controllers");

    // Reference: the same units through a plain in-process run.
    HarnessOptions plain;
    plain.jobs = 2;
    plain.use_stop_token = false;
    RunController ref_ctl(plain, "sweep", "cfg");
    std::string ref = fingerprint(ref_ctl.run(tenUnits()));

    // Two controllers race on one ledger from separate threads; both
    // must complete every unit (executing some, adopting the rest) and
    // report the identical byte sequence.
    HarnessReport rep_a, rep_b;
    std::thread ta([&] {
        RunController ctl(ledgerOptions(tmp.path(), "wa"), "sweep",
                          "cfg");
        rep_a = ctl.run(tenUnits());
    });
    std::thread tb([&] {
        RunController ctl(ledgerOptions(tmp.path(), "wb"), "sweep",
                          "cfg");
        rep_b = ctl.run(tenUnits());
    });
    ta.join();
    tb.join();

    EXPECT_TRUE(rep_a.complete());
    EXPECT_TRUE(rep_b.complete());
    EXPECT_EQ(fingerprint(rep_a), ref);
    EXPECT_EQ(fingerprint(rep_b), ref);
}

TEST(Ledger, ControllerReclaimsDeadWorkersCells)
{
    TempLedgerDir tmp("controller_reclaim");

    // A "worker" that died mid-cell: it claimed two cells, heartbeat
    // stopped forever (its process is gone), nothing was published.
    {
        WorkLedger victim(tmp.path(), "sweep",
                          "cfg:units=10", "victim");
        ASSERT_EQ(victim.tryClaim("unit:3"),
                  WorkLedger::Claim::Acquired);
        ASSERT_EQ(victim.tryClaim("unit:7"),
                  WorkLedger::Claim::Acquired);
    }

    std::atomic<int> executions{0};
    HarnessOptions h = ledgerOptions(tmp.path(), "rescuer");
    h.lease_timeout_s = 0.2; // observe the frozen beat quickly
    RunController ctl(h, "sweep", "cfg:units=10");
    HarnessReport report = ctl.run(tenUnits(&executions));

    EXPECT_TRUE(report.complete());
    EXPECT_EQ(executions.load(), 10)
        << "the rescuer re-ran the abandoned cells itself";
    for (const UnitResult &r : report.results)
        EXPECT_EQ(r.status, CellStatus::Ok) << r.key;
}

} // namespace
} // namespace cppc
