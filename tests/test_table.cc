#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace cppc {
namespace {

TEST(TextTable, AlignedOutput)
{
    TextTable t({"name", "value"});
    t.row().add("alpha").add(uint64_t(42));
    t.row().add("b").add(3.14159, 2);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    // Header rule present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, Csv)
{
    TextTable t({"a", "b"});
    t.row().add("x").add(uint64_t(1));
    t.row().add("y").add(uint64_t(2));
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,1\ny,2\n");
}

TEST(TextTable, ScientificCells)
{
    TextTable t({"mttf"});
    t.row().addSci(8.02e21, 2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("8.02e+21"), std::string::npos);
}

TEST(TextTable, RowCount)
{
    TextTable t({"c"});
    EXPECT_EQ(t.numRows(), 0u);
    t.row().add("1");
    t.row().add("2");
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, ImplicitFirstRow)
{
    TextTable t({"c"});
    t.add("direct"); // add() without row() starts one
    EXPECT_EQ(t.numRows(), 1u);
}

} // namespace
} // namespace cppc
