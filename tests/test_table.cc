#include <gtest/gtest.h>

#include <clocale>
#include <sstream>

#include "util/table.hh"

namespace cppc {
namespace {

TEST(TextTable, AlignedOutput)
{
    TextTable t({"name", "value"});
    t.row().add("alpha").add(uint64_t(42));
    t.row().add("b").add(3.14159, 2);
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("3.14"), std::string::npos);
    // Header rule present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, Csv)
{
    TextTable t({"a", "b"});
    t.row().add("x").add(uint64_t(1));
    t.row().add("y").add(uint64_t(2));
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\nx,1\ny,2\n");
}

TEST(TextTable, ScientificCells)
{
    TextTable t({"mttf"});
    t.row().addSci(8.02e21, 2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("8.02e+21"), std::string::npos);
}

TEST(TextTable, FormatHelpersAreExact)
{
    EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
    EXPECT_EQ(formatFixed(2.0, 0), "2");
    EXPECT_EQ(formatFixed(-0.5, 3), "-0.500");
    EXPECT_EQ(formatSci(8.02e21, 2), "8.02e+21");
    EXPECT_EQ(formatSci(1.5e-3, 1), "1.5e-03");
}

TEST(TextTable, NumbersAreLocaleIndependent)
{
    // Under a comma-decimal locale, snprintf("%f") would print "3,14"
    // and break every CSV/JSON consumer; the to_chars-based formatting
    // must not care.  Skip when the container has no such locale.
    const char *old = std::setlocale(LC_NUMERIC, nullptr);
    std::string saved = old ? old : "C";
    bool have_locale =
        std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
        std::setlocale(LC_NUMERIC, "fr_FR.UTF-8") != nullptr;
    if (!have_locale)
        GTEST_SKIP() << "no comma-decimal locale installed";

    std::string fixed = formatFixed(3.14159, 2);
    std::string sci = formatSci(8.02e21, 2);
    TextTable t({"v"});
    t.row().add(1234.5, 1);
    std::ostringstream os;
    t.printCsv(os);
    std::setlocale(LC_NUMERIC, saved.c_str());

    EXPECT_EQ(fixed, "3.14");
    EXPECT_EQ(sci, "8.02e+21");
    EXPECT_NE(os.str().find("1234.5"), std::string::npos);
    EXPECT_EQ(os.str().find("1234,5"), std::string::npos);
}

TEST(TextTable, RowCount)
{
    TextTable t({"c"});
    EXPECT_EQ(t.numRows(), 0u);
    t.row().add("1");
    t.row().add("2");
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(TextTable, ImplicitFirstRow)
{
    TextTable t({"c"});
    t.add("direct"); // add() without row() starts one
    EXPECT_EQ(t.numRows(), 1u);
}

} // namespace
} // namespace cppc
