#include <gtest/gtest.h>

#include "protection/memory_mapped_ecc.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

MemoryMappedEccScheme *
scheme(Harness &h)
{
    return static_cast<MemoryMappedEccScheme *>(h.cache->scheme());
}

TEST(MmEcc, SingleBitDirtyFaultCorrectedViaMemoryCode)
{
    Harness h(smallGeometry(), std::make_unique<MemoryMappedEccScheme>());
    h.cache->storeWord(0x0, 0xFACE);
    h.cache->corruptBit(0, 31);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), 0xFACEull);
    EXPECT_EQ(scheme(h)->memCodeReads(), 1u);
}

TEST(MmEcc, CleanFaultRefetchedWithoutMemoryCodeRead)
{
    Harness h(smallGeometry(), std::make_unique<MemoryMappedEccScheme>());
    uint8_t seed[8] = {1, 1, 2, 3, 5, 8, 13, 21};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 8);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
    EXPECT_EQ(scheme(h)->memCodeReads(), 0u);
}

TEST(MmEcc, DoubleBitDirtyFaultIsDue)
{
    Harness h(smallGeometry(), std::make_unique<MemoryMappedEccScheme>());
    h.cache->storeWord(0x0, 0x5555);
    h.cache->corruptBit(0, 0);
    h.cache->corruptBit(0, 17);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.due);
}

TEST(MmEcc, DirtyEvictionsCostMemoryCodeWrites)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<MemoryMappedEccScheme>());
    h.cache->storeWord(0x0, 1);
    h.cache->storeWord(0x8, 2); // two dirty units in line 0
    h.cache->loadWord(0x0 + g.size_bytes); // evict it
    EXPECT_EQ(scheme(h)->memCodeWrites(), 2u);
    // Clean evictions cost nothing.
    h.cache->loadWord(0x20);
    h.cache->loadWord(0x20 + g.size_bytes);
    EXPECT_EQ(scheme(h)->memCodeWrites(), 2u);
}

TEST(MmEcc, OnChipAreaIsDetectionOnly)
{
    Harness h(smallGeometry(), std::make_unique<MemoryMappedEccScheme>());
    // Parity bits only: same on-chip footprint as 1D parity, with full
    // single-bit correction capability for dirty data.
    EXPECT_EQ(h.cache->scheme()->codeBitsTotal(), 128u * 8);
}

TEST(MmEcc, EverySingleBitPositionCorrectable)
{
    Harness h(smallGeometry(), std::make_unique<MemoryMappedEccScheme>());
    h.cache->storeWord(0x40, 0x123456789abcdef0ull);
    Row row = 8; // line 2, unit 0
    for (unsigned bit = 0; bit < 64; bit += 3) {
        h.cache->corruptBit(row, bit);
        auto out = h.cache->load(0x40, 8, nullptr);
        ASSERT_FALSE(out.due) << "bit " << bit;
        ASSERT_EQ(h.cache->loadWord(0x40), 0x123456789abcdef0ull);
    }
}

TEST(MmEcc, RandomTrafficNoFalseDetections)
{
    Harness h(smallGeometry(), std::make_unique<MemoryMappedEccScheme>());
    Rng rng(61);
    for (int i = 0; i < 4000; ++i) {
        Addr a = rng.nextBelow(512) * 8;
        if (rng.chance(0.5))
            h.cache->storeWord(a, rng.next());
        else
            h.cache->loadWord(a);
    }
    EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
}

} // namespace
} // namespace cppc
