#include <gtest/gtest.h>

#include "util/bits.hh"

namespace cppc {
namespace {

TEST(Bits, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo((1ull << 63) + 1));
}

TEST(Bits, Log2i)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(1024), 10u);
    EXPECT_EQ(log2i(1ull << 63), 63u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(Bits, BitsRange)
{
    EXPECT_EQ(bitsRange(0xdeadbeef, 0, 8), 0xefull);
    EXPECT_EQ(bitsRange(0xdeadbeef, 8, 8), 0xbeull);
    EXPECT_EQ(bitsRange(0xdeadbeef, 0, 0), 0ull);
    EXPECT_EQ(bitsRange(~0ull, 0, 64), ~0ull);
}

TEST(Bits, SetFlipTest)
{
    uint64_t v = 0;
    v = setBit(v, 5);
    EXPECT_TRUE(testBit(v, 5));
    v = flipBit(v, 5);
    EXPECT_FALSE(testBit(v, 5));
    v = setBit(v, 63);
    EXPECT_EQ(v, 1ull << 63);
    v = setBit(v, 63, false);
    EXPECT_EQ(v, 0ull);
}

TEST(Bits, Parity64)
{
    EXPECT_EQ(parity64(0), 0u);
    EXPECT_EQ(parity64(1), 1u);
    EXPECT_EQ(parity64(3), 0u);
    EXPECT_EQ(parity64(7), 1u);
    EXPECT_EQ(parity64(~0ull), 0u);
}

TEST(Bits, InterleavedParity64MatchesDefinition)
{
    // Exhaustive cross-check against the definition for a few k.
    uint64_t samples[] = {0ull, 1ull, 0x8000000000000001ull,
                          0xdeadbeefcafebabeull, ~0ull,
                          0x0101010101010101ull};
    for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
        for (uint64_t v : samples) {
            uint64_t expect = 0;
            for (unsigned j = 0; j < 64; ++j)
                if ((v >> j) & 1)
                    expect ^= 1ull << (j % k);
            EXPECT_EQ(interleavedParity64(v, k), expect)
                << "k=" << k << " v=" << v;
        }
    }
}

TEST(Bits, InterleavedParityDetectsUpTo8AdjacentFlips)
{
    // Section 3.6: 8-way interleaved parity detects every spatial fault
    // flipping 1..8 adjacent bits in a word.
    uint64_t word = 0xdeadbeefcafebabeull;
    uint64_t base = interleavedParity64(word, 8);
    for (unsigned width = 1; width <= 8; ++width) {
        for (unsigned start = 0; start + width <= 64; ++start) {
            uint64_t mask =
                (width == 64 ? ~0ull : ((1ull << width) - 1)) << start;
            uint64_t flipped = word ^ mask;
            EXPECT_NE(interleavedParity64(flipped, 8), base)
                << "width=" << width << " start=" << start;
        }
    }
}

TEST(Bits, InterleavedParityBlindToDistance8Pairs)
{
    // Two flips at distance exactly 8 share a parity class: the classic
    // undetectable even fault outside the 8-bit envelope.
    uint64_t word = 0x0123456789abcdefull;
    uint64_t base = interleavedParity64(word, 8);
    uint64_t flipped = word ^ ((1ull << 3) | (1ull << 11));
    EXPECT_EQ(interleavedParity64(flipped, 8), base);
}

TEST(Bits, Align)
{
    EXPECT_EQ(alignDown(0x1234, 0x100), 0x1200ull);
    EXPECT_EQ(alignUp(0x1234, 0x100), 0x1300ull);
    EXPECT_EQ(alignUp(0x1200, 0x100), 0x1200ull);
}

} // namespace
} // namespace cppc
