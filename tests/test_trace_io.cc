#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cpu/ooo_core.hh"
#include "sim/paper_config.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "cppc_trace_" + tag +
        ".trc";
}

TEST(TraceIo, RoundTrip)
{
    std::string path = tempPath("roundtrip");
    const auto &p = profileByName("gcc");
    TraceGenerator gen(p, 7);
    std::vector<TraceRecord> original;
    {
        TraceWriter w(path);
        for (int i = 0; i < 5000; ++i) {
            TraceRecord r = gen.next();
            original.push_back(r);
            w.write(r);
        }
        w.close();
        EXPECT_EQ(w.recordsWritten(), 5000u);
    }
    TraceReader r(path);
    EXPECT_EQ(r.recordCount(), 5000u);
    TraceRecord rec;
    for (const TraceRecord &want : original) {
        ASSERT_TRUE(r.read(rec));
        EXPECT_EQ(rec.op, want.op);
        EXPECT_EQ(rec.addr, want.addr);
        EXPECT_EQ(rec.pc, want.pc);
        EXPECT_EQ(rec.size, want.size);
    }
    EXPECT_FALSE(r.read(rec)); // end of trace
    std::remove(path.c_str());
}

TEST(TraceIo, SourceWrapsAround)
{
    std::string path = tempPath("wrap");
    {
        TraceWriter w(path);
        TraceRecord r;
        r.op = Op::Load;
        for (uint64_t i = 0; i < 10; ++i) {
            r.addr = i * 8;
            w.write(r);
        }
    } // destructor finalizes
    TraceReader r(path);
    for (int i = 0; i < 25; ++i) {
        TraceRecord rec = r.next();
        EXPECT_EQ(rec.addr, static_cast<Addr>((i % 10) * 8));
    }
    EXPECT_EQ(r.wraps(), 2u);
    std::remove(path.c_str());
}

TEST(TraceIo, RewindRestarts)
{
    std::string path = tempPath("rewind");
    {
        TraceWriter w(path);
        TraceRecord r;
        r.op = Op::Store;
        r.addr = 0x1234;
        w.write(r);
        r.addr = 0x5678;
        w.write(r);
    }
    TraceReader r(path);
    TraceRecord rec;
    ASSERT_TRUE(r.read(rec));
    EXPECT_EQ(rec.addr, 0x1234u);
    r.rewind();
    ASSERT_TRUE(r.read(rec));
    EXPECT_EQ(rec.addr, 0x1234u);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbageFiles)
{
    std::string path = tempPath("garbage");
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("definitely not a trace", f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceReader r(path), FatalError);
    std::remove(path.c_str());
    EXPECT_THROW(TraceReader r("/nonexistent/dir/x.trc"), FatalError);
}

TEST(TraceIo, RejectsEmptyTrace)
{
    std::string path = tempPath("empty");
    {
        TraceWriter w(path);
        w.close();
    }
    EXPECT_THROW(TraceReader r(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceIo, ReplayMatchesGeneratorExactly)
{
    // Recording a generator and replaying the file must produce the
    // identical simulation: same cycles, same cache statistics.
    std::string path = tempPath("replay");
    const auto &p = profileByName("vortex");
    const uint64_t n = 100000;
    {
        TraceGenerator gen(p, 11);
        TraceWriter w(path);
        for (uint64_t i = 0; i < n; ++i)
            w.write(gen.next());
    }

    CoreResult live, replayed;
    uint64_t live_l1_misses = 0, replay_l1_misses = 0;
    {
        Hierarchy h(SchemeKind::Cppc);
        OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(),
                          h.l2.get(), h.l1i.get());
        TraceGenerator gen(p, 11);
        live = core.run(gen, n);
        live_l1_misses = h.l1d->stats().misses();
    }
    {
        Hierarchy h(SchemeKind::Cppc);
        OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(),
                          h.l2.get(), h.l1i.get());
        TraceReader reader(path);
        replayed = core.run(reader, n);
        replay_l1_misses = h.l1d->stats().misses();
    }
    EXPECT_EQ(live.cycles, replayed.cycles);
    EXPECT_EQ(live.loads, replayed.loads);
    EXPECT_EQ(live.stores, replayed.stores);
    EXPECT_EQ(live_l1_misses, replay_l1_misses);
    std::remove(path.c_str());
}

} // namespace
} // namespace cppc
