#include <gtest/gtest.h>

#include <cstring>

#include "util/rng.hh"
#include "util/wide_word.hh"

namespace cppc {
namespace {

TEST(WideWord, ConstructionAndConversion)
{
    WideWord w = WideWord::fromUint64(0xdeadbeefcafebabeull);
    EXPECT_EQ(w.sizeBytes(), 8u);
    EXPECT_EQ(w.sizeBits(), 64u);
    EXPECT_EQ(w.toUint64(), 0xdeadbeefcafebabeull);
    EXPECT_EQ(w.byte(0), 0xbe);
    EXPECT_EQ(w.byte(7), 0xde);
}

TEST(WideWord, FromBytesRoundTrip)
{
    uint8_t buf[32];
    for (unsigned i = 0; i < 32; ++i)
        buf[i] = static_cast<uint8_t>(i * 7 + 3);
    WideWord w = WideWord::fromBytes(buf, 32);
    uint8_t out[32];
    w.toBytes(out);
    EXPECT_EQ(std::memcmp(buf, out, 32), 0);
}

TEST(WideWord, BitAccess)
{
    WideWord w(8);
    EXPECT_TRUE(w.isZero());
    w.setBit(0);
    w.setBit(63);
    EXPECT_TRUE(w.bit(0));
    EXPECT_TRUE(w.bit(63));
    EXPECT_FALSE(w.bit(32));
    EXPECT_EQ(w.popcount(), 2u);
    w.flipBit(0);
    EXPECT_FALSE(w.bit(0));
    EXPECT_EQ(w.popcount(), 1u);
}

TEST(WideWord, BitNumberingIsLittleEndianWithinBytes)
{
    WideWord w(8);
    w.setBit(10); // byte 1, offset 2
    EXPECT_EQ(w.byte(1), 0x04);
    EXPECT_EQ(w.toUint64(), 1ull << 10);
}

TEST(WideWord, XorSelfInverse)
{
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        WideWord a = WideWord::random(rng, 32);
        WideWord b = WideWord::random(rng, 32);
        WideWord c = a ^ b;
        EXPECT_EQ(c ^ b, a);
        EXPECT_EQ(c ^ a, b);
        EXPECT_TRUE((a ^ a).isZero());
    }
}

TEST(WideWord, RotationPaperConvention)
{
    // Figure 5: after rotating left by one byte, bit j of the result
    // equals bit (j + 8) mod width of the original.
    Rng rng(11);
    WideWord w = WideWord::random(rng, 8);
    WideWord r = w.rotatedLeft(1);
    for (unsigned j = 0; j < 64; ++j)
        EXPECT_EQ(r.bit(j), w.bit((j + 8) % 64)) << "bit " << j;
}

TEST(WideWord, RotationInverse)
{
    Rng rng(13);
    for (unsigned bytes : {8u, 16u, 32u}) {
        WideWord w = WideWord::random(rng, bytes);
        for (unsigned k = 0; k <= bytes; ++k) {
            EXPECT_EQ(w.rotatedLeft(k).rotatedRight(k), w);
            EXPECT_EQ(w.rotatedRight(k).rotatedLeft(k), w);
        }
        EXPECT_EQ(w.rotatedLeft(bytes), w); // full rotation = identity
    }
}

TEST(WideWord, RotationComposes)
{
    Rng rng(17);
    WideWord w = WideWord::random(rng, 8);
    EXPECT_EQ(w.rotatedLeft(3).rotatedLeft(2), w.rotatedLeft(5));
    EXPECT_EQ(w.rotatedLeft(7).rotatedLeft(1), w);
}

TEST(WideWord, RotationPreservesParityClasses)
{
    // The property the whole spatial design rests on: byte rotation
    // permutes bytes, so a bit's offset within its byte (its 8-way
    // parity class) never changes.
    Rng rng(19);
    for (unsigned bytes : {8u, 32u}) {
        WideWord w = WideWord::random(rng, bytes);
        for (unsigned k = 0; k < bytes; ++k)
            EXPECT_EQ(w.rotatedLeft(k).interleavedParity(8),
                      w.interleavedParity(8));
    }
}

TEST(WideWord, InterleavedParityMatchesNaive)
{
    Rng rng(23);
    for (unsigned bytes : {8u, 16u, 32u}) {
        for (int rep = 0; rep < 20; ++rep) {
            WideWord w = WideWord::random(rng, bytes);
            for (unsigned k : {1u, 2u, 4u, 8u, 16u}) {
                uint64_t expect = 0;
                for (unsigned j = 0; j < w.sizeBits(); ++j)
                    if (w.bit(j))
                        expect ^= 1ull << (j % k);
                EXPECT_EQ(w.interleavedParity(k), expect);
            }
        }
    }
}

TEST(WideWord, ParityBit)
{
    WideWord w(8);
    EXPECT_EQ(w.parity(), 0u);
    w.setBit(5);
    EXPECT_EQ(w.parity(), 1u);
    w.setBit(42);
    EXPECT_EQ(w.parity(), 0u);
}

TEST(WideWord, XorLinearOverParity)
{
    Rng rng(29);
    WideWord a = WideWord::random(rng, 32);
    WideWord b = WideWord::random(rng, 32);
    EXPECT_EQ((a ^ b).parity(), a.parity() ^ b.parity());
    EXPECT_EQ((a ^ b).interleavedParity(8),
              a.interleavedParity(8) ^ b.interleavedParity(8));
}

TEST(WideWord, ToHex)
{
    WideWord w = WideWord::fromUint64(0x00ff00aa12345678ull);
    EXPECT_EQ(w.toHex(), "0x00ff00aa12345678");
}

TEST(WideWord, WidthMismatchEquality)
{
    WideWord a(8), b(16);
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(a != b);
}

} // namespace
} // namespace cppc
