#include <gtest/gtest.h>

#include <cstring>

#include "protection/parity.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

Harness
makeHarness(unsigned ways = 8)
{
    return Harness(smallGeometry(),
                   std::make_unique<OneDimParityScheme>(ways));
}

TEST(Parity1D, CleanOperationNeverDetects)
{
    Harness h = makeHarness();
    Rng rng(3);
    for (int i = 0; i < 3000; ++i) {
        Addr a = rng.nextBelow(512) * 8;
        if (rng.chance(0.4))
            h.cache->storeWord(a, rng.next());
        else
            h.cache->loadWord(a);
    }
    auto *s = h.cache->scheme();
    EXPECT_EQ(s->stats().detections, 0u);
}

TEST(Parity1D, SingleBitFaultInCleanWordRefetched)
{
    Harness h = makeHarness();
    uint8_t seed[8] = {0x5a, 0xa5, 1, 2, 3, 4, 5, 6};
    h.mem.poke(0x0, seed, 8);
    uint64_t good = h.cache->loadWord(0x0);
    h.cache->corruptBit(0, 13);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.cache->lastVerify(), VerifyOutcome::Refetched);
    EXPECT_EQ(h.cache->loadWord(0x0), good);
    EXPECT_EQ(h.cache->scheme()->stats().refetched_clean, 1u);
}

TEST(Parity1D, SingleBitFaultInDirtyWordIsDue)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0x1234);
    h.cache->corruptBit(0, 3);
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_TRUE(out.due);
    EXPECT_EQ(h.cache->scheme()->stats().due, 1u);
}

TEST(Parity1D, DetectionGranularityFollowsInterleaving)
{
    // With k-way interleaved parity, any 1..k adjacent flips are
    // detected; k+1 adjacent flips can cancel.
    for (unsigned k : {1u, 2u, 4u, 8u}) {
        Harness h = makeHarness(k);
        h.cache->storeWord(0x0, 0xdeadbeefcafebabeull);
        auto *s = static_cast<OneDimParityScheme *>(h.cache->scheme());
        // width <= k adjacent flips always detected.
        for (unsigned w = 1; w <= k; ++w) {
            for (unsigned start = 0; start + w <= 64; start += 7) {
                WideWord data = h.cache->rowData(0);
                for (unsigned j = 0; j < w; ++j)
                    data.flipBit(start + j);
                EXPECT_NE(data.interleavedParity(k), s->storedParity(0))
                    << "k=" << k << " w=" << w << " start=" << start;
            }
        }
        // Two flips at distance k are invisible.
        if (k < 64) {
            WideWord data = h.cache->rowData(0);
            data.flipBit(0);
            data.flipBit(k);
            EXPECT_EQ(data.interleavedParity(k), s->storedParity(0));
        }
    }
}

TEST(Parity1D, EvenFaultInSameClassEscapesDetection)
{
    // Documented blind spot: 2 flips in one parity class are silent.
    Harness h = makeHarness(8);
    h.cache->storeWord(0x0, 0);
    h.cache->corruptBit(0, 5);
    h.cache->corruptBit(0, 13); // same class (5 mod 8)
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.fault_detected); // SDC territory
    EXPECT_EQ(h.cache->loadWord(0x0), (1ull << 5) | (1ull << 13));
}

TEST(Parity1D, StoreRewritesParity)
{
    Harness h = makeHarness();
    h.cache->storeWord(0x0, 0xf0f0);
    h.cache->storeWord(0x0, 0x0f0f); // overwrite dirty word
    auto out = h.cache->load(0x0, 8, nullptr);
    EXPECT_FALSE(out.fault_detected);
    EXPECT_EQ(h.cache->loadWord(0x0), 0x0f0full);
}

TEST(Parity1D, FaultDetectedOnWriteback)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<OneDimParityScheme>(8));
    h.cache->storeWord(0x0, 0x77);
    h.cache->corruptBit(0, 0);
    // Evict the dirty line by touching the conflicting address.
    auto out = h.cache->loadWord(0x0 + g.size_bytes);
    (void)out;
    EXPECT_EQ(h.cache->scheme()->stats().detections, 1u);
    EXPECT_EQ(h.cache->scheme()->stats().due, 1u);
}

TEST(Parity1D, CheckOnWritebackCanBeDisabled)
{
    CacheGeometry g = smallGeometry();
    Harness h(g, std::make_unique<OneDimParityScheme>(8));
    h.cache->setCheckOnWriteback(false);
    h.cache->storeWord(0x0, 0x77);
    h.cache->corruptBit(0, 0);
    h.cache->loadWord(0x0 + g.size_bytes);
    EXPECT_EQ(h.cache->scheme()->stats().detections, 0u);
    // The corrupted value silently reached memory.
    uint8_t out[8];
    h.mem.peek(0x0, out, 8);
    uint64_t v;
    std::memcpy(&v, out, 8);
    EXPECT_EQ(v, 0x76ull);
}

TEST(Parity1D, PartialStoreCountsRbw)
{
    Harness h = makeHarness();
    uint8_t b = 0xab;
    auto out = h.cache->store(0x3, 1, &b);
    EXPECT_TRUE(out.rbw);
    EXPECT_EQ(h.cache->scheme()->stats().rbw_words, 1u);
    auto out2 = h.cache->storeWord(0x0, 1); // full word: no RBW
    EXPECT_FALSE(out2.rbw);
}

TEST(Parity1D, CodeBitsArea)
{
    Harness h = makeHarness(8);
    // 128 rows x 8 parity bits.
    EXPECT_EQ(h.cache->scheme()->codeBitsTotal(), 128u * 8);
    EXPECT_EQ(h.cache->scheme()->bitlineOverheadFactor(), 1.0);
}

TEST(Parity1D, Name)
{
    OneDimParityScheme s(8);
    EXPECT_EQ(s.name(), "parity1d-k8");
}

} // namespace
} // namespace cppc
