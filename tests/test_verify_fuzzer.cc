/**
 * @file
 * Tests for the src/verify subsystem itself: the golden reference
 * model, the ddmin shrinker, the deterministic op generator, the
 * invariant probe's ability to catch tampering, and — end to end —
 * that a short fuzz is clean for every conformance scheme while the
 * deliberately sabotaged CPPC is caught and shrunk to a handful of
 * operations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cppc/cppc_scheme.hh"
#include "state/state_io.hh"
#include "test_helpers.hh"
#include "verify/fuzzer.hh"
#include "verify/golden_model.hh"
#include "verify/invariant_probe.hh"
#include "verify/shrinker.hh"

namespace cppc {
namespace {

using test::Harness;
using test::ScopedSeed;
using test::smallGeometry;

TEST(GoldenModel, StoresAndReadsBack)
{
    GoldenModel g(256);
    EXPECT_EQ(g.spaceBytes(), 256u);
    for (Addr a = 0; a < 256; ++a)
        EXPECT_EQ(g.byteAt(a), 0u); // unwritten space reads zero

    uint8_t in[4] = {0xde, 0xad, 0xbe, 0xef};
    g.store(0x10, 4, in);
    EXPECT_EQ(g.byteAt(0x10), 0xde);
    EXPECT_EQ(g.byteAt(0x13), 0xef);
    EXPECT_EQ(g.byteAt(0x14), 0x00);

    uint8_t out[4] = {};
    g.read(0x10, 4, out);
    EXPECT_TRUE(std::equal(in, in + 4, out));
    EXPECT_TRUE(g.matches(0x10, in, 4));
    in[2] ^= 0x01;
    EXPECT_FALSE(g.matches(0x10, in, 4));
}

TEST(GoldenModel, StoreWordIsLittleEndian)
{
    GoldenModel g(64);
    g.storeWord(8, 0x0123456789abcdefull);
    EXPECT_EQ(g.byteAt(8), 0xef);
    EXPECT_EQ(g.byteAt(15), 0x01);
}

TEST(Shrinker, DdminFindsMinimalPair)
{
    // Failure requires both 3 and 17: ddmin must strip the other 18.
    std::vector<int> seq(20);
    for (int i = 0; i < 20; ++i)
        seq[i] = i;
    auto fails = [](const std::vector<int> &c) {
        return std::count(c.begin(), c.end(), 3) &&
            std::count(c.begin(), c.end(), 17);
    };
    std::vector<int> minimal =
        shrinkOps<int>(seq, std::function<bool(const std::vector<int> &)>(
                                fails));
    ASSERT_EQ(minimal.size(), 2u);
    EXPECT_EQ(minimal[0], 3);  // ddmin preserves relative order
    EXPECT_EQ(minimal[1], 17);
}

TEST(Shrinker, DdminHandlesSingleCulprit)
{
    std::vector<int> seq{4, 8, 15, 16, 23, 42};
    auto fails = [](const std::vector<int> &c) {
        return std::count(c.begin(), c.end(), 23) != 0;
    };
    std::vector<int> minimal =
        shrinkOps<int>(seq, std::function<bool(const std::vector<int> &)>(
                                fails));
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_EQ(minimal[0], 23);
}

TEST(Fuzzer, GenerateOpsIsDeterministic)
{
    std::vector<FuzzOp> a = generateOps(42, 200);
    std::vector<FuzzOp> b = generateOps(42, 200);
    ASSERT_EQ(a.size(), 200u);
    EXPECT_EQ(formatOps(a), formatOps(b));
    // and genuinely seed-sensitive
    EXPECT_NE(formatOps(a), formatOps(generateOps(43, 200)));
}

TEST(Fuzzer, ShortFuzzIsCleanForEveryConformanceScheme)
{
    for (const FuzzSchemeSpec &spec : conformanceSchemes()) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            ScopedSeed scoped(seed);
            FuzzOneResult r = fuzzOne(spec, seed, 120);
            CPPC_ASSERT_FALSE(r.failed())
                << "scheme " << spec.name << ": " << r.replay.violation;
        }
    }
}

TEST(Fuzzer, TagCppcFuzzIsClean)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        ScopedSeed scoped(seed);
        TagFuzzResult r = fuzzTagCppc(seed, 150);
        CPPC_ASSERT_TRUE(r.ok) << r.violation;
        CPPC_ASSERT_TRUE(r.strikes > 0);
    }
}

TEST(Fuzzer, SabotagedCppcIsCaughtAndShrunk)
{
    // The acceptance self-check: a CPPC whose eviction path skips one
    // R2 update must be caught by the register invariant and shrunk to
    // a short replayable reproducer.
    FuzzSchemeSpec sab = sabotagedCppcSpec();
    bool caught = false;
    for (uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
        ScopedSeed scoped(seed);
        FuzzOneResult r = fuzzOne(sab, seed, 200);
        if (!r.failed())
            continue;
        caught = true;
        CPPC_ASSERT_FALSE(r.minimal.empty());
        CPPC_ASSERT_TRUE(r.minimal.size() <= 10)
            << "minimal reproducer has " << r.minimal.size() << " ops:\n"
            << formatOps(r.minimal);
        // The minimal sequence must still reproduce from the seed.
        ReplayResult again = replaySequence(sab, r.minimal, seed);
        CPPC_ASSERT_FALSE(again.ok);
    }
    ASSERT_TRUE(caught)
        << "sabotaged CPPC survived 10 fuzz seeds undetected";
}

void
expectSameReplay(const ReplayResult &x, const ReplayResult &y)
{
    EXPECT_EQ(x.ok, y.ok);
    EXPECT_EQ(x.violation, y.violation);
    EXPECT_EQ(x.checks, y.checks);
    EXPECT_EQ(x.strikes, y.strikes);
    EXPECT_EQ(x.corrected, y.corrected);
    EXPECT_EQ(x.refetched, y.refetched);
    EXPECT_EQ(x.dues, y.dues);
    EXPECT_EQ(x.misrepairs, y.misrepairs);
}

TEST(ReplaySession, SnapshotRoundTripIsBitIdentical)
{
    // The property the snapshot shrinker and the harness checkpoints
    // rest on: running straight through, and snapshot/restoring at a
    // clean boundary, end in indistinguishable results.
    const FuzzSchemeSpec *spec = findScheme("cppc");
    ASSERT_NE(spec, nullptr);
    const uint64_t seed = 5;
    std::vector<FuzzOp> ops = generateOps(seed, 150);

    ReplayResult ref = replaySequence(*spec, ops, seed);
    ASSERT_TRUE(ref.ok);

    ReplaySession a(*spec, seed);
    ASSERT_TRUE(a.run(ops, 75));
    EXPECT_EQ(a.position(), 75u);
    std::string snap = a.saveState();
    ASSERT_TRUE(a.run(ops, ops.size()));

    ReplaySession b(*spec, seed);
    b.loadState(snap);
    EXPECT_EQ(b.position(), 75u);
    ASSERT_TRUE(b.run(ops, ops.size()));

    expectSameReplay(a.result(), ref);
    expectSameReplay(b.result(), ref);
}

TEST(ReplaySession, RejectsForeignOrCorruptSnapshots)
{
    const FuzzSchemeSpec *spec = findScheme("secded");
    ASSERT_NE(spec, nullptr);
    std::vector<FuzzOp> ops = generateOps(9, 60);
    ReplaySession a(*spec, 9);
    ASSERT_TRUE(a.run(ops, 40));
    const std::string snap = a.saveState();

    // A snapshot binds its seed: a session fuzzing a different seed
    // must refuse it instead of silently diverging.
    ReplaySession wrong_seed(*spec, 10);
    EXPECT_THROW(wrong_seed.loadState(snap), StateError);

    // A flipped payload bit fails the section CRC.
    std::string bad = snap;
    bad[bad.size() / 2] ^= 0x04;
    ReplaySession corrupt(*spec, 9);
    EXPECT_THROW(corrupt.loadState(bad), StateError);

    // A truncated image fails framing.
    ReplaySession cut(*spec, 9);
    EXPECT_THROW(cut.loadState(snap.substr(0, snap.size() / 2)),
                 StateError);

    // And a failed load must not have moved the session: it still
    // replays from op 0 with the reference verdict.
    EXPECT_EQ(cut.position(), 0u);
    ASSERT_TRUE(cut.run(ops, ops.size()));
    expectSameReplay(cut.result(), replaySequence(*spec, ops, 9));
}

TEST(Shrinker, SnapshotResumeCutsReplayEffort)
{
    // Acceptance: the snapshot-driven ddmin must measurably beat the
    // replay-from-seed-zero baseline on the sabotaged CPPC, while
    // still producing minimal sequences that reproduce.
    FuzzSchemeSpec sab = sabotagedCppcSpec();
    ShrinkStats total;
    bool caught = false;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        ScopedSeed scoped(seed);
        FuzzOneResult r = fuzzOne(sab, seed, 300);
        if (!r.failed())
            continue;
        caught = true;
        // Never more work than the baseline, for any seed.
        CPPC_ASSERT_TRUE(r.shrink.ops_replayed <=
                         r.shrink.ops_replayed_baseline);
        total.ops_replayed += r.shrink.ops_replayed;
        total.ops_replayed_baseline += r.shrink.ops_replayed_baseline;
        total.snapshots_taken += r.shrink.snapshots_taken;
        total.snapshots_resumed += r.shrink.snapshots_resumed;
    }
    ASSERT_TRUE(caught)
        << "sabotaged CPPC survived 10 fuzz seeds undetected";
    EXPECT_GT(total.snapshots_taken, 0u);
    EXPECT_GT(total.snapshots_resumed, 0u);
    // Strictly fewer ops overall: the prefix skip is real.
    EXPECT_LT(total.ops_replayed, total.ops_replayed_baseline);
}

std::unique_ptr<ProtectionScheme>
makeCppc()
{
    return std::make_unique<CppcScheme>(CppcConfig{});
}

TEST(InvariantProbe, CatchesUnscrubbedRegisterFault)
{
    Harness h(smallGeometry(), makeCppc());
    auto *s = dynamic_cast<CppcScheme *>(h.cache->scheme());
    ASSERT_NE(s, nullptr);
    InvariantProbe probe(*h.cache, nullptr, &h.mem, nullptr);

    h.cache->storeWord(0x40, 0x1234567812345678ull);
    EXPECT_TRUE(probe.runChecks("test", "store"));
    EXPECT_FALSE(probe.failed());

    s->injectRegisterFault(0, 0, XorRegisterFile::Which::R1, 5);
    EXPECT_FALSE(probe.runChecks("test", "register-tamper"));
    EXPECT_TRUE(probe.failed());
    EXPECT_FALSE(probe.violation().empty());

    // The violation latches: fixing the state does not clear it...
    ASSERT_TRUE(s->scrubRegisters());
    EXPECT_FALSE(probe.runChecks("test", "after-scrub"));
    // ...until reset().
    probe.reset();
    EXPECT_TRUE(probe.runChecks("test", "after-reset"));
}

TEST(InvariantProbe, CatchesSilentDataTamper)
{
    Harness h(smallGeometry(), makeCppc());
    GoldenModel golden(4096);
    InvariantProbe probe(*h.cache, nullptr, &h.mem, &golden);

    golden.storeWord(0x0, 0x1111111111111111ull);
    h.cache->storeWord(0x0, 0x1111111111111111ull);
    EXPECT_TRUE(probe.runChecks("test", "store"));

    // pokeRowData rewrites a resident word *and* its check code behind
    // the scheme's back: parity stays consistent, so only the golden
    // coherence sweep can notice the divergence.
    h.cache->pokeRowData(0, WideWord::fromUint64(0x2222222222222222ull,
                                                 8));
    EXPECT_FALSE(probe.runChecks("test", "data-tamper"));
    EXPECT_TRUE(probe.failed());
}

} // namespace
} // namespace cppc
