/**
 * @file
 * Tests for the src/verify subsystem itself: the golden reference
 * model, the ddmin shrinker, the deterministic op generator, the
 * invariant probe's ability to catch tampering, and — end to end —
 * that a short fuzz is clean for every conformance scheme while the
 * deliberately sabotaged CPPC is caught and shrunk to a handful of
 * operations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cppc/cppc_scheme.hh"
#include "test_helpers.hh"
#include "verify/fuzzer.hh"
#include "verify/golden_model.hh"
#include "verify/invariant_probe.hh"
#include "verify/shrinker.hh"

namespace cppc {
namespace {

using test::Harness;
using test::ScopedSeed;
using test::smallGeometry;

TEST(GoldenModel, StoresAndReadsBack)
{
    GoldenModel g(256);
    EXPECT_EQ(g.spaceBytes(), 256u);
    for (Addr a = 0; a < 256; ++a)
        EXPECT_EQ(g.byteAt(a), 0u); // unwritten space reads zero

    uint8_t in[4] = {0xde, 0xad, 0xbe, 0xef};
    g.store(0x10, 4, in);
    EXPECT_EQ(g.byteAt(0x10), 0xde);
    EXPECT_EQ(g.byteAt(0x13), 0xef);
    EXPECT_EQ(g.byteAt(0x14), 0x00);

    uint8_t out[4] = {};
    g.read(0x10, 4, out);
    EXPECT_TRUE(std::equal(in, in + 4, out));
    EXPECT_TRUE(g.matches(0x10, in, 4));
    in[2] ^= 0x01;
    EXPECT_FALSE(g.matches(0x10, in, 4));
}

TEST(GoldenModel, StoreWordIsLittleEndian)
{
    GoldenModel g(64);
    g.storeWord(8, 0x0123456789abcdefull);
    EXPECT_EQ(g.byteAt(8), 0xef);
    EXPECT_EQ(g.byteAt(15), 0x01);
}

TEST(Shrinker, DdminFindsMinimalPair)
{
    // Failure requires both 3 and 17: ddmin must strip the other 18.
    std::vector<int> seq(20);
    for (int i = 0; i < 20; ++i)
        seq[i] = i;
    auto fails = [](const std::vector<int> &c) {
        return std::count(c.begin(), c.end(), 3) &&
            std::count(c.begin(), c.end(), 17);
    };
    std::vector<int> minimal =
        shrinkOps<int>(seq, std::function<bool(const std::vector<int> &)>(
                                fails));
    ASSERT_EQ(minimal.size(), 2u);
    EXPECT_EQ(minimal[0], 3);  // ddmin preserves relative order
    EXPECT_EQ(minimal[1], 17);
}

TEST(Shrinker, DdminHandlesSingleCulprit)
{
    std::vector<int> seq{4, 8, 15, 16, 23, 42};
    auto fails = [](const std::vector<int> &c) {
        return std::count(c.begin(), c.end(), 23) != 0;
    };
    std::vector<int> minimal =
        shrinkOps<int>(seq, std::function<bool(const std::vector<int> &)>(
                                fails));
    ASSERT_EQ(minimal.size(), 1u);
    EXPECT_EQ(minimal[0], 23);
}

TEST(Fuzzer, GenerateOpsIsDeterministic)
{
    std::vector<FuzzOp> a = generateOps(42, 200);
    std::vector<FuzzOp> b = generateOps(42, 200);
    ASSERT_EQ(a.size(), 200u);
    EXPECT_EQ(formatOps(a), formatOps(b));
    // and genuinely seed-sensitive
    EXPECT_NE(formatOps(a), formatOps(generateOps(43, 200)));
}

TEST(Fuzzer, ShortFuzzIsCleanForEveryConformanceScheme)
{
    for (const FuzzSchemeSpec &spec : conformanceSchemes()) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
            ScopedSeed scoped(seed);
            FuzzOneResult r = fuzzOne(spec, seed, 120);
            CPPC_ASSERT_FALSE(r.failed())
                << "scheme " << spec.name << ": " << r.replay.violation;
        }
    }
}

TEST(Fuzzer, TagCppcFuzzIsClean)
{
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        ScopedSeed scoped(seed);
        TagFuzzResult r = fuzzTagCppc(seed, 150);
        CPPC_ASSERT_TRUE(r.ok) << r.violation;
        CPPC_ASSERT_TRUE(r.strikes > 0);
    }
}

TEST(Fuzzer, SabotagedCppcIsCaughtAndShrunk)
{
    // The acceptance self-check: a CPPC whose eviction path skips one
    // R2 update must be caught by the register invariant and shrunk to
    // a short replayable reproducer.
    FuzzSchemeSpec sab = sabotagedCppcSpec();
    bool caught = false;
    for (uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
        ScopedSeed scoped(seed);
        FuzzOneResult r = fuzzOne(sab, seed, 200);
        if (!r.failed())
            continue;
        caught = true;
        CPPC_ASSERT_FALSE(r.minimal.empty());
        CPPC_ASSERT_TRUE(r.minimal.size() <= 10)
            << "minimal reproducer has " << r.minimal.size() << " ops:\n"
            << formatOps(r.minimal);
        // The minimal sequence must still reproduce from the seed.
        ReplayResult again = replaySequence(sab, r.minimal, seed);
        CPPC_ASSERT_FALSE(again.ok);
    }
    ASSERT_TRUE(caught)
        << "sabotaged CPPC survived 10 fuzz seeds undetected";
}

std::unique_ptr<ProtectionScheme>
makeCppc()
{
    return std::make_unique<CppcScheme>(CppcConfig{});
}

TEST(InvariantProbe, CatchesUnscrubbedRegisterFault)
{
    Harness h(smallGeometry(), makeCppc());
    auto *s = dynamic_cast<CppcScheme *>(h.cache->scheme());
    ASSERT_NE(s, nullptr);
    InvariantProbe probe(*h.cache, nullptr, &h.mem, nullptr);

    h.cache->storeWord(0x40, 0x1234567812345678ull);
    EXPECT_TRUE(probe.runChecks("test", "store"));
    EXPECT_FALSE(probe.failed());

    s->injectRegisterFault(0, 0, XorRegisterFile::Which::R1, 5);
    EXPECT_FALSE(probe.runChecks("test", "register-tamper"));
    EXPECT_TRUE(probe.failed());
    EXPECT_FALSE(probe.violation().empty());

    // The violation latches: fixing the state does not clear it...
    ASSERT_TRUE(s->scrubRegisters());
    EXPECT_FALSE(probe.runChecks("test", "after-scrub"));
    // ...until reset().
    probe.reset();
    EXPECT_TRUE(probe.runChecks("test", "after-reset"));
}

TEST(InvariantProbe, CatchesSilentDataTamper)
{
    Harness h(smallGeometry(), makeCppc());
    GoldenModel golden(4096);
    InvariantProbe probe(*h.cache, nullptr, &h.mem, &golden);

    golden.storeWord(0x0, 0x1111111111111111ull);
    h.cache->storeWord(0x0, 0x1111111111111111ull);
    EXPECT_TRUE(probe.runChecks("test", "store"));

    // pokeRowData rewrites a resident word *and* its check code behind
    // the scheme's back: parity stays consistent, so only the golden
    // coherence sweep can notice the divergence.
    h.cache->pokeRowData(0, WideWord::fromUint64(0x2222222222222222ull,
                                                 8));
    EXPECT_FALSE(probe.runChecks("test", "data-tamper"));
    EXPECT_TRUE(probe.failed());
}

} // namespace
} // namespace cppc
