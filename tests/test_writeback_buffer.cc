#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "cache/writeback_buffer.hh"
#include "cppc/cppc_scheme.hh"
#include "util/logging.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

uint64_t
peekWord(MainMemory &mem, Addr a)
{
    uint8_t buf[8];
    mem.peek(a, buf, 8);
    uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
}

TEST(WritebackBuffer, HoldsLinesUntilOverflow)
{
    MainMemory mem;
    WritebackBuffer buf(2, 32, &mem);
    uint8_t line[32] = {1};
    buf.writeLine(0x00, line, 32);
    buf.writeLine(0x20, line, 32);
    EXPECT_EQ(buf.occupancy(), 2u);
    EXPECT_EQ(mem.writes(), 0u); // nothing drained yet
    buf.writeLine(0x40, line, 32);
    EXPECT_EQ(buf.occupancy(), 2u);
    EXPECT_EQ(buf.drained(), 1u);
    EXPECT_EQ(mem.writes(), 1u); // oldest went down
    EXPECT_EQ(peekWord(mem, 0x00), 1ull);
}

TEST(WritebackBuffer, ReadHitsShortCircuit)
{
    MainMemory mem;
    WritebackBuffer buf(4, 32, &mem);
    uint8_t line[32];
    for (unsigned i = 0; i < 32; ++i)
        line[i] = static_cast<uint8_t>(i + 1);
    buf.writeLine(0x40, line, 32);
    uint8_t out[8] = {};
    buf.readLine(0x48, out, 8); // inside the parked line
    EXPECT_EQ(out[0], 9);
    EXPECT_EQ(buf.hits(), 1u);
    EXPECT_EQ(mem.reads(), 0u);
    // Misses forward below.
    buf.readLine(0x100, out, 8);
    EXPECT_EQ(mem.reads(), 1u);
}

TEST(WritebackBuffer, CoalescesRepeatedWritebacks)
{
    MainMemory mem;
    WritebackBuffer buf(2, 32, &mem);
    uint8_t a[32] = {0xAA};
    uint8_t b[32] = {0xBB};
    buf.writeLine(0x0, a, 32);
    buf.writeLine(0x0, b, 32);
    EXPECT_EQ(buf.occupancy(), 1u);
    EXPECT_EQ(buf.coalesced(), 1u);
    buf.drain();
    EXPECT_EQ(peekWord(mem, 0x0) & 0xff, 0xBBull);
}

TEST(WritebackBuffer, DrainFlushesInOrder)
{
    MainMemory mem;
    WritebackBuffer buf(8, 32, &mem);
    uint8_t line[32] = {7};
    for (Addr a = 0; a < 4 * 32; a += 32)
        buf.writeLine(a, line, 32);
    buf.drain();
    EXPECT_EQ(buf.occupancy(), 0u);
    EXPECT_EQ(mem.writes(), 4u);
}

TEST(WritebackBuffer, TransparentUnderCache)
{
    // L1 -> buffer -> memory behaves exactly like L1 -> memory.
    MainMemory mem;
    WritebackBuffer buf(4, 32, &mem);
    CacheGeometry g = test::smallGeometry();
    WriteBackCache cache("L1D", g, ReplacementKind::LRU, &buf,
                         std::make_unique<CppcScheme>());
    Rng rng(5);
    std::map<Addr, uint64_t> golden;
    for (int i = 0; i < 8000; ++i) {
        Addr a = rng.nextBelow(1024) * 8;
        if (rng.chance(0.5)) {
            uint64_t v = rng.next();
            golden[a] = v;
            cache.storeWord(a, v);
        } else {
            uint64_t expect = golden.count(a) ? golden[a] : 0;
            ASSERT_EQ(cache.loadWord(a), expect) << "iter " << i;
        }
    }
    cache.flushAll();
    buf.drain();
    for (const auto &[a, v] : golden)
        ASSERT_EQ(peekWord(mem, a), v);
    EXPECT_GT(buf.hits() + buf.drained(), 0u);
}

TEST(WritebackBuffer, CppcRecoveryRefetchThroughBuffer)
{
    // A clean fault refetches through the buffer: if the line is still
    // parked there, the refetch must see the parked (newest) data.
    MainMemory mem;
    WritebackBuffer buf(4, 32, &mem);
    CacheGeometry g = test::smallGeometry();
    WriteBackCache cache("L1D", g, ReplacementKind::LRU, &buf,
                         std::make_unique<CppcScheme>());
    cache.storeWord(0x0, 0x1234);
    // Evict the dirty line into the buffer, then re-load it (clean).
    cache.loadWord(0x0 + g.size_bytes);
    EXPECT_EQ(buf.occupancy(), 1u);
    EXPECT_EQ(cache.loadWord(0x0), 0x1234ull); // served from the buffer
    // Corrupt the now-clean copy; recovery refetches through the buffer.
    Row r = 0;
    bool found = false;
    cache.forEachValidRow([&](Row row, bool) {
        if (!found && cache.rowAddr(row) == 0x0) {
            r = row;
            found = true;
        }
    });
    ASSERT_TRUE(found);
    cache.corruptBit(r, 3);
    auto out = cache.load(0x0, 8, nullptr);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(cache.loadWord(0x0), 0x1234ull);
}

TEST(WritebackBuffer, RejectsBadConfig)
{
    MainMemory mem;
    EXPECT_THROW(WritebackBuffer(0, 32, &mem), FatalError);
    EXPECT_THROW(WritebackBuffer(4, 33, &mem), FatalError);
    EXPECT_THROW(WritebackBuffer(4, 32, nullptr), FatalError);
}

} // namespace
} // namespace cppc
