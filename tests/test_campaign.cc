#include <gtest/gtest.h>

#include <cstring>

#include "cppc/cppc_scheme.hh"
#include "fault/campaign.hh"
#include "protection/parity.hh"
#include "protection/secded.hh"
#include "test_helpers.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

using test::Harness;
using test::smallGeometry;

void
populate(Harness &h, double dirty_fraction = 0.5, uint64_t seed = 3)
{
    Rng rng(seed);
    const CacheGeometry &g = h.cache->geometry();
    for (Addr a = 0; a < g.size_bytes; a += 8) {
        if (rng.chance(dirty_fraction)) {
            uint64_t v = rng.next();
            uint8_t buf[8];
            std::memcpy(buf, &v, 8);
            h.cache->store(a, 8, buf);
        } else {
            h.cache->load(a, 8, nullptr);
        }
    }
}

TEST(Injector, AppliesOnlyValidRows)
{
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    h.cache->storeWord(0x0, 1); // only line 0 valid
    FaultInjector inj(*h.cache);
    Strike s;
    s.bits = {{0, 5}, {3, 7}, {100, 1}}; // rows 0,3 valid; 100 invalid
    auto rows = inj.apply(s);
    EXPECT_EQ(rows.size(), 2u);
}

TEST(Injector, DeduplicatesRows)
{
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    h.cache->storeWord(0x0, 1);
    FaultInjector inj(*h.cache);
    Strike s;
    s.bits = {{0, 5}, {0, 6}, {0, 7}};
    EXPECT_EQ(inj.apply(s).size(), 1u);
}

TEST(Campaign, Deterministic)
{
    for (int rep = 0; rep < 2; ++rep) {
        Harness h(smallGeometry(), std::make_unique<CppcScheme>());
        populate(h);
        Campaign::Config cc;
        cc.injections = 300;
        cc.seed = 11;
        cc.shapes = StrikeShapeDistribution::scaledTechnologyMix(0.5);
        static CampaignResult first;
        CampaignResult r = Campaign(*h.cache, cc).run();
        if (rep == 0) {
            first = r;
        } else {
            EXPECT_EQ(r.corrected, first.corrected);
            EXPECT_EQ(r.due, first.due);
            EXPECT_EQ(r.sdc, first.sdc);
        }
    }
}

TEST(Campaign, RestoresCacheState)
{
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    populate(h);
    std::vector<uint64_t> before;
    for (Row r = 0; r < h.cache->geometry().numRows(); ++r)
        before.push_back(h.cache->rowValid(r)
                             ? h.cache->rowData(r).toUint64()
                             : 0);
    Campaign::Config cc;
    cc.injections = 500;
    cc.seed = 13;
    cc.shapes = StrikeShapeDistribution::scaledTechnologyMix(0.7);
    Campaign(*h.cache, cc).run();
    for (Row r = 0; r < h.cache->geometry().numRows(); ++r) {
        uint64_t now =
            h.cache->rowValid(r) ? h.cache->rowData(r).toUint64() : 0;
        ASSERT_EQ(now, before[r]) << "row " << r;
    }
}

TEST(Campaign, SingleBitsOnCppcAllCorrected)
{
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    populate(h, 1.0);
    Campaign::Config cc;
    cc.injections = 500;
    cc.seed = 17;
    CampaignResult r = Campaign(*h.cache, cc).run();
    EXPECT_EQ(r.corrected, 500u);
    EXPECT_EQ(r.due, 0u);
    EXPECT_EQ(r.sdc, 0u);
}

TEST(Campaign, SingleBitsOnParityDirtyAreDue)
{
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    populate(h, 1.0); // everything dirty
    Campaign::Config cc;
    cc.injections = 300;
    cc.seed = 19;
    CampaignResult r = Campaign(*h.cache, cc).run();
    EXPECT_EQ(r.due, 300u);
    EXPECT_EQ(r.coverage(), 0.0);
}

TEST(Campaign, ParityCleanDataRefetches)
{
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    populate(h, 0.0); // everything clean
    Campaign::Config cc;
    cc.injections = 300;
    cc.seed = 23;
    CampaignResult r = Campaign(*h.cache, cc).run();
    EXPECT_EQ(r.corrected, 300u);
}

TEST(Campaign, RunOneClassifiesFixedStrike)
{
    Harness h(smallGeometry(), std::make_unique<CppcScheme>());
    populate(h, 1.0);
    Campaign::Config cc;
    Campaign c(*h.cache, cc);
    // A 2x2 strike inside the envelope: corrected.
    Strike s;
    s.bits = {{4, 10}, {4, 11}, {5, 10}, {5, 11}};
    EXPECT_EQ(c.runOne(s), InjectionOutcome::Corrected);
    // Two faults in the same rotation class: DUE.
    Strike bad;
    bad.bits = {{0, 3}, {8, 3}};
    EXPECT_EQ(c.runOne(bad), InjectionOutcome::Due);
    // Empty / invalid-row strike: benign.
    Strike none;
    none.bits = {{4000, 1}};
    EXPECT_EQ(c.runOne(none), InjectionOutcome::Benign);
}

TEST(Campaign, DetectsSdcOnUnprotectedBlindSpot)
{
    // Parity's even-fault blind spot must be reported as SDC.
    Harness h(smallGeometry(), std::make_unique<OneDimParityScheme>(8));
    populate(h, 1.0);
    Campaign::Config cc;
    Campaign c(*h.cache, cc);
    Strike s;
    s.bits = {{2, 0}, {2, 8}}; // same parity class, one word
    EXPECT_EQ(c.runOne(s), InjectionOutcome::Sdc);
}

TEST(Campaign, ClassifiesDetectedWrongRepairAsMisrepair)
{
    // SECDED decodes most 3-bit faults as a plausible 1-bit repair:
    // the fault *is* detected, the data ends up wrong — that must be
    // classified Misrepair, never Sdc, and counted toward the visible
    // denominator.
    Harness h(smallGeometry(),
              std::make_unique<SecdedScheme>(1)); // no interleaving
    populate(h, 1.0);
    Campaign::Config cc;
    Campaign c(*h.cache, cc);
    CampaignResult res;
    Rng rng(31);
    int misrepairs = 0;
    for (int rep = 0; rep < 200; ++rep) {
        // Three distinct bits in one word.
        unsigned b0 = static_cast<unsigned>(rng.nextBelow(64));
        unsigned b1 = (b0 + 1 + static_cast<unsigned>(rng.nextBelow(62)))
            % 64;
        unsigned b2 = b1;
        while (b2 == b0 || b2 == b1)
            b2 = static_cast<unsigned>(rng.nextBelow(64));
        Strike s;
        s.bits = {{6, b0}, {6, b1}, {6, b2}};
        InjectionOutcome o = c.runOne(s);
        Campaign::reduceOutcome(res, o);
        // A weight-3 strike is never silent under SECDED: the syndrome
        // is always nonzero, so a wrong outcome must be a misrepair.
        EXPECT_NE(o, InjectionOutcome::Sdc);
        if (o == InjectionOutcome::Misrepair)
            ++misrepairs;
    }
    // ~76% of weight-3 patterns alias into a wrong single-bit repair.
    EXPECT_GT(misrepairs, 100);
    EXPECT_EQ(res.misrepair, static_cast<uint64_t>(misrepairs));
    // Every trial is either a misrepair or a detected-uncorrectable.
    EXPECT_EQ(res.sdc, 0u);
    EXPECT_EQ(res.misrepair + res.due, 200u);
}

TEST(Campaign, PhysicalInterleavingScattersStrikes)
{
    // With 8-way interleaving an 8-bit horizontal strike hits 8
    // different words with one bit each: SECDED corrects all of them,
    // while without interleaving the same strike often defeats it.
    auto run = [&](unsigned ilv) {
        Harness h(smallGeometry(), std::make_unique<SecdedScheme>(ilv));
        populate(h, 1.0);
        Campaign::Config cc;
        cc.injections = 400;
        cc.seed = 29;
        StrikeShapeDistribution d;
        d.add({1, 8, 1.0}, 1.0); // horizontal 8-bit strikes
        cc.shapes = d;
        cc.physical_interleave = ilv;
        return Campaign(*h.cache, cc).run();
    };
    CampaignResult with = run(8);
    CampaignResult without = run(1);
    EXPECT_EQ(with.sdc, 0u);
    EXPECT_EQ(with.due, 0u);
    EXPECT_EQ(with.corrected, 400u);
    EXPECT_LT(without.coverage(), 0.5);
}

TEST(Campaign, ParallelFrontEndBitIdenticalToSerial)
{
    // Serial reference on one populated cache...
    Harness serial_h(smallGeometry(), std::make_unique<CppcScheme>());
    populate(serial_h);
    Campaign::Config cc;
    cc.injections = 400;
    cc.seed = 31;
    cc.shapes = StrikeShapeDistribution::scaledTechnologyMix(0.5);
    CampaignResult serial = Campaign(*serial_h.cache, cc).run();

    // ...must match the fan-out over factory-built identical copies.
    struct Host : CampaignHost
    {
        Harness h;
        Host() : h(smallGeometry(), std::make_unique<CppcScheme>())
        {
            populate(h);
        }
        WriteBackCache &cache() override { return *h.cache; }
    };
    for (unsigned jobs : {1u, 3u, 4u}) {
        CampaignResult parallel = runCampaignParallel(
            [] { return std::make_unique<Host>(); }, cc, jobs);
        EXPECT_EQ(parallel.injections, serial.injections) << jobs;
        EXPECT_EQ(parallel.benign, serial.benign) << jobs;
        EXPECT_EQ(parallel.corrected, serial.corrected) << jobs;
        EXPECT_EQ(parallel.due, serial.due) << jobs;
        EXPECT_EQ(parallel.sdc, serial.sdc) << jobs;
    }
}

TEST(Campaign, SampleStrikesMatchesConfiguredCount)
{
    Campaign::Config cc;
    cc.injections = 123;
    cc.seed = 5;
    auto strikes = Campaign::sampleStrikes(smallGeometry(), cc);
    EXPECT_EQ(strikes.size(), 123u);
    // Same seed, same sequence.
    auto again = Campaign::sampleStrikes(smallGeometry(), cc);
    ASSERT_EQ(again.size(), strikes.size());
    for (size_t i = 0; i < strikes.size(); ++i) {
        ASSERT_EQ(again[i].bits.size(), strikes[i].bits.size());
        for (size_t b = 0; b < strikes[i].bits.size(); ++b) {
            EXPECT_EQ(again[i].bits[b].row, strikes[i].bits[b].row);
            EXPECT_EQ(again[i].bits[b].bit, strikes[i].bits[b].bit);
        }
    }
}

TEST(Campaign, CoverageAccessorMath)
{
    CampaignResult r;
    r.injections = 10;
    r.benign = 2;
    r.corrected = 6;
    r.due = 1;
    r.sdc = 1;
    EXPECT_DOUBLE_EQ(r.rate(r.corrected), 0.6);
    EXPECT_DOUBLE_EQ(r.coverage(), 6.0 / 8.0);
}

} // namespace
} // namespace cppc
