#include <gtest/gtest.h>

#include <set>

#include "cache/replacement.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

TEST(Replacement, ParseNames)
{
    EXPECT_EQ(parseReplacementKind("lru"), ReplacementKind::LRU);
    EXPECT_EQ(parseReplacementKind("plru"), ReplacementKind::TreePLRU);
    EXPECT_EQ(parseReplacementKind("random"), ReplacementKind::Random);
    EXPECT_THROW(parseReplacementKind("fifo"), FatalError);
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.touch(0, w);
    EXPECT_EQ(lru.victim(0), 0u);
    lru.touch(0, 0);
    EXPECT_EQ(lru.victim(0), 1u);
    lru.touch(0, 1);
    lru.touch(0, 2);
    EXPECT_EQ(lru.victim(0), 3u);
}

TEST(Lru, SetsIndependent)
{
    LruPolicy lru(2, 2);
    lru.touch(0, 0);
    lru.touch(0, 1);
    lru.touch(1, 1);
    lru.touch(1, 0);
    EXPECT_EQ(lru.victim(0), 0u);
    EXPECT_EQ(lru.victim(1), 1u);
}

TEST(TreePlru, NeverEvictsMostRecent)
{
    TreePlruPolicy plru(1, 8);
    for (int rep = 0; rep < 50; ++rep) {
        unsigned w = static_cast<unsigned>(rep * 5) % 8;
        plru.touch(0, w);
        EXPECT_NE(plru.victim(0), w);
    }
}

TEST(TreePlru, CyclesThroughAllWays)
{
    // Touch-the-victim repeatedly must visit every way.
    TreePlruPolicy plru(1, 4);
    std::set<unsigned> seen;
    for (int i = 0; i < 16; ++i) {
        unsigned v = plru.victim(0);
        seen.insert(v);
        plru.touch(0, v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(TreePlru, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(TreePlruPolicy(1, 3), FatalError);
}

TEST(Random, VictimInRangeAndCoversWays)
{
    RandomPolicy r(4, 123);
    std::set<unsigned> seen;
    for (int i = 0; i < 200; ++i) {
        unsigned v = r.victim(0);
        EXPECT_LT(v, 4u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Random, DeterministicForSeed)
{
    RandomPolicy a(8, 7), b(8, 7);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.victim(0), b.victim(0));
}

TEST(Factory, CreatesRequestedKinds)
{
    auto l = ReplacementPolicy::create(ReplacementKind::LRU, 4, 2);
    auto p = ReplacementPolicy::create(ReplacementKind::TreePLRU, 4, 2);
    auto r = ReplacementPolicy::create(ReplacementKind::Random, 4, 2, 9);
    EXPECT_EQ(l->name(), "lru");
    EXPECT_EQ(p->name(), "plru");
    EXPECT_EQ(r->name(), "random");
}

TEST(DirectMapped, AllPoliciesReturnWayZero)
{
    for (auto kind : {ReplacementKind::LRU, ReplacementKind::TreePLRU}) {
        auto p = ReplacementPolicy::create(kind, 4, 1);
        p->touch(2, 0);
        EXPECT_EQ(p->victim(2), 0u);
    }
}

} // namespace
} // namespace cppc
