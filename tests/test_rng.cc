#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace cppc {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(42);
    uint64_t first = a.next();
    a.next();
    a.reseed(42);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange)
{
    Rng r(3);
    for (uint64_t n : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBelow(n), n);
    }
}

TEST(Rng, NextBelowCoversSmallRange)
{
    Rng r(5);
    std::set<uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.nextBelow(10));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.nextRange(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        hit_lo |= v == 3;
        hit_hi |= v == 6;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, PoissonMeanSmallLambda)
{
    Rng r(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.poisson(2.5));
    EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambda)
{
    Rng r(19);
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.poisson(200.0));
    EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZero)
{
    Rng r(23);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, ZipfLikeBiasedTowardZero)
{
    Rng r(29);
    uint64_t low = 0, high = 0;
    const uint64_t n = 1000;
    for (int i = 0; i < 20000; ++i) {
        uint64_t v = r.zipfLike(n, 0.8);
        EXPECT_LT(v, n);
        if (v < n / 10)
            ++low;
        if (v >= 9 * n / 10)
            ++high;
    }
    EXPECT_GT(low, high * 2);
}

} // namespace
} // namespace cppc
