/**
 * @file
 * atomicWriteFile / atomicPublishFile failure-contract tests: on a
 * failing disk the writers must report false (temp file cleaned up,
 * target untouched) instead of silently dropping a result — and the
 * one journaled call site must propagate that verdict.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include <sys/stat.h>
#include <unistd.h>

#include "harness/journal.hh"
#include "util/atomic_file.hh"
#include "util/fs_fault.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream is(path);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
}

/** A scratch directory we can delete out from under a writer. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(testing::TempDir() + "cppc_atomic_" + tag + "_" +
                std::to_string(::getpid()))
    {
        ::mkdir(path_.c_str(), 0755);
    }
    ~TempDir()
    {
        // Best effort: tests that nuke the directory mid-way leave
        // nothing to clean.
        ::rmdir(path_.c_str());
    }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(AtomicFile, WriteSucceedsAndIsReadable)
{
    TempDir dir("ok");
    const std::string target = dir.file("result.json");
    ASSERT_TRUE(atomicWriteFile(target, "{\"ok\":1}\n"));
    EXPECT_EQ(slurp(target), "{\"ok\":1}\n");
    ASSERT_TRUE(atomicWriteFile(target, "{\"ok\":2}\n"));
    EXPECT_EQ(slurp(target), "{\"ok\":2}\n");
    std::remove(target.c_str());
}

TEST(AtomicFile, FailingDiskReportsFalseNotFatal)
{
    // The target's directory does not exist, so the temp sibling can
    // never be created: the write must fail *reported*, not abort the
    // process and not leave droppings.
    const std::string target =
        testing::TempDir() + "cppc_no_such_dir_" +
        std::to_string(::getpid()) + "/result.json";
    EXPECT_FALSE(atomicWriteFile(target, "lost"));
    EXPECT_FALSE(atomicPublishFile(atomicTempPath(target), target));
    std::ifstream is(target);
    EXPECT_FALSE(is.good());
}

TEST(AtomicFile, JournalAppendPropagatesDiskFailure)
{
    // The E1 call-site contract end to end: a Journal whose backing
    // directory vanishes must report the failed checkpoint through
    // append()'s return value, and must not let the in-memory image
    // drift ahead of the disk.
    TempDir dir("journal");
    const std::string jpath = dir.file("run.journal");
    Journal j(jpath, "sweep", "cfg=a", Journal::Mode::Fresh);
    ASSERT_TRUE(j.append({"banked", CellStatus::Ok, 1, "p"}));

    // Pull the disk out: remove the journal file and its directory.
    ASSERT_EQ(std::remove(jpath.c_str()), 0);
    ASSERT_EQ(::rmdir(dir.path().c_str()), 0);
    EXPECT_FALSE(j.append({"lost", CellStatus::Ok, 1, "q"}));

    // Disk restored: the next append must succeed and the rewritten
    // image must carry the banked record but never the rolled-back one.
    ASSERT_EQ(::mkdir(dir.path().c_str(), 0755), 0);
    EXPECT_TRUE(j.append({"after", CellStatus::Ok, 1, "r"}));
    std::string contents = slurp(jpath);
    EXPECT_NE(contents.find("cell banked ok"), std::string::npos);
    EXPECT_NE(contents.find("cell after ok"), std::string::npos);
    EXPECT_EQ(contents.find("cell lost"), std::string::npos);
    std::remove(jpath.c_str());
}

TEST(FsFault, EnospcFailsReportedWithNoDroppings)
{
    TempDir dir("enospc");
    const std::string target = dir.file("result.json");
    {
        FsFaultScope fault(FsFaultMode::Enospc);
        EXPECT_FALSE(atomicWriteFile(target, "doomed payload"));
    }
    // A full disk must not abort, must not touch the target, and must
    // not leave a temp sibling behind.
    std::ifstream is(target);
    EXPECT_FALSE(is.good());
    std::ifstream tmp(atomicTempPath(target));
    EXPECT_FALSE(tmp.good());

    // Disarmed, the very same write succeeds.
    ASSERT_TRUE(atomicWriteFile(target, "healthy"));
    EXPECT_EQ(slurp(target), "healthy");
    std::remove(target.c_str());
}

TEST(FsFault, ShortWriteTearsTempButNeverTarget)
{
    TempDir dir("short");
    const std::string target = dir.file("result.json");
    const std::string payload(256, 'x');
    {
        FsFaultScope fault(FsFaultMode::ShortWrite);
        EXPECT_FALSE(atomicWriteFile(target, payload));
    }
    // The disk filled mid-file: half the temp landed, then ENOSPC.
    // The writer must report failure, clean the torn temp, and the
    // target must never exist in a torn form.
    std::ifstream is(target);
    EXPECT_FALSE(is.good());
    std::ifstream tmp(atomicTempPath(target));
    EXPECT_FALSE(tmp.good());
}

TEST(FsFault, TornRenameLeavesCompleteTempBehind)
{
    TempDir dir("torn");
    const std::string target = dir.file("result.json");
    {
        FsFaultScope fault(FsFaultMode::TornRename);
        EXPECT_FALSE(atomicWriteFile(target, "committed bytes"));
    }
    // The crash-between-write-and-rename layout: no target, but the
    // fully written temp sibling is still there for resume paths to
    // tolerate (and for this test to clean up).
    std::ifstream is(target);
    EXPECT_FALSE(is.good());
    const std::string tmp = atomicTempPath(target);
    EXPECT_EQ(slurp(tmp), "committed bytes");
    std::remove(tmp.c_str());
}

TEST(FsFault, SkipBudgetDelaysTheFault)
{
    TempDir dir("skip");
    const std::string a = dir.file("a.json");
    const std::string b = dir.file("b.json");
    {
        // One rename succeeds before the fault engages: the first
        // write commits, the second tears.
        FsFaultScope fault(FsFaultMode::TornRename, 1);
        EXPECT_TRUE(atomicWriteFile(a, "first"));
        EXPECT_FALSE(atomicWriteFile(b, "second"));
    }
    EXPECT_EQ(slurp(a), "first");
    std::ifstream is(b);
    EXPECT_FALSE(is.good());
    std::remove(a.c_str());
    std::remove(atomicTempPath(b).c_str());
}

TEST(FsFault, JournalSurvivesTransientEnospc)
{
    // End to end through the journal: an append under ENOSPC reports
    // false and rolls back; once the disk recovers, the journal image
    // carries everything except the rolled-back record.
    TempDir dir("journal_enospc");
    const std::string jpath = dir.file("run.journal");
    Journal j(jpath, "sweep", "cfg=b", Journal::Mode::Fresh);
    ASSERT_TRUE(j.append({"before", CellStatus::Ok, 1, "p"}));
    {
        FsFaultScope fault(FsFaultMode::Enospc);
        EXPECT_FALSE(j.append({"lost", CellStatus::Ok, 1, "q"}));
    }
    EXPECT_TRUE(j.append({"after", CellStatus::Ok, 1, "r"}));
    std::string contents = slurp(jpath);
    EXPECT_NE(contents.find("cell before ok"), std::string::npos);
    EXPECT_NE(contents.find("cell after ok"), std::string::npos);
    EXPECT_EQ(contents.find("cell lost"), std::string::npos);
    std::remove(jpath.c_str());
}

} // namespace
} // namespace cppc
