/**
 * @file
 * RunController behaviour tests: watchdog reaping, retry-with-backoff,
 * permanent failure latching, stop-token skipping, and journaled
 * completion in the face of all three.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include <unistd.h>

#include <fstream>

#include <sys/stat.h>

#include "harness/codec.hh"
#include "harness/run_controller.hh"
#include "harness/stop_token.hh"
#include "util/logging.hh"

namespace cppc {
namespace {

class TempFile
{
  public:
    explicit TempFile(const std::string &tag)
        : path_(testing::TempDir() + "cppc_ctl_" + tag + "_" +
                std::to_string(::getpid()))
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Options tuned for tests: fast backoff, no global stop token. */
HarnessOptions
testOptions()
{
    HarnessOptions h;
    h.jobs = 2;
    h.backoff_base_s = 0.01;
    h.use_stop_token = false;
    return h;
}

WorkUnit
okUnit(const std::string &key, const std::string &payload)
{
    WorkUnit u;
    u.key = key;
    u.work = [payload](const std::atomic<bool> &) { return payload; };
    return u;
}

TEST(RunController, AllUnitsSucceed)
{
    RunController ctl(testOptions(), "test", "cfg=1");
    HarnessReport rep =
        ctl.run({okUnit("a", "pa"), okUnit("b", "pb"), okUnit("c", "")});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(rep.exitCode(), 0);
    EXPECT_EQ(rep.ok, 3u);
    EXPECT_EQ(rep.results[0].payload, "pa");
    EXPECT_EQ(rep.results[1].payload, "pb");
    EXPECT_EQ(rep.results[2].status, CellStatus::Ok);
    // Results come back in input order regardless of completion order.
    EXPECT_EQ(rep.results[0].key, "a");
    EXPECT_EQ(rep.results[2].key, "c");
}

TEST(RunController, FailingUnitRetriedThenLatched)
{
    HarnessOptions h = testOptions();
    h.retries = 2;
    RunController ctl(h, "test", "cfg=1");
    std::atomic<unsigned> calls{0};
    WorkUnit u;
    u.key = "flaky";
    u.work = [&calls](const std::atomic<bool> &) -> std::string {
        ++calls;
        throw std::runtime_error("boom");
    };
    HarnessReport rep = ctl.run({u});
    EXPECT_EQ(calls.load(), 3u); // 1 try + 2 retries
    EXPECT_EQ(rep.failed, 1u);
    EXPECT_EQ(rep.results[0].status, CellStatus::Failed);
    EXPECT_EQ(rep.results[0].attempts, 3u);
    EXPECT_EQ(rep.results[0].error, "boom");
    EXPECT_EQ(rep.exitCode(), HarnessReport::kExitIncomplete);
}

TEST(RunController, RetrySucceedsAfterTransientFailure)
{
    HarnessOptions h = testOptions();
    h.retries = 3;
    RunController ctl(h, "test", "cfg=1");
    std::atomic<unsigned> calls{0};
    WorkUnit u;
    u.key = "transient";
    u.work = [&calls](const std::atomic<bool> &) -> std::string {
        if (++calls < 3)
            throw std::runtime_error("transient");
        return "recovered";
    };
    HarnessReport rep = ctl.run({u});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(rep.results[0].attempts, 3u);
    EXPECT_EQ(rep.results[0].payload, "recovered");
}

TEST(RunController, WatchdogReapsHungUnit)
{
    HarnessOptions h = testOptions();
    h.cell_timeout_s = 0.1;
    RunController ctl(h, "test", "cfg=1");
    WorkUnit hung;
    hung.key = "hung";
    hung.work = [](const std::atomic<bool> &cancel) -> std::string {
        // A cooperative "infinite loop": spins until the watchdog
        // flips the cancel flag.
        while (!cancel.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        throw CancelledError("unit observed cancel");
    };
    HarnessReport rep = ctl.run({hung, okUnit("fine", "p")});
    EXPECT_EQ(rep.timed_out, 1u);
    EXPECT_EQ(rep.results[0].status, CellStatus::TimedOut);
    // The hang did not take the rest of the run down with it.
    EXPECT_EQ(rep.results[1].status, CellStatus::Ok);
    EXPECT_EQ(rep.exitCode(), HarnessReport::kExitIncomplete);
}

TEST(RunController, TimedOutUnitIsRetried)
{
    HarnessOptions h = testOptions();
    h.cell_timeout_s = 0.1;
    h.retries = 1;
    RunController ctl(h, "test", "cfg=1");
    std::atomic<unsigned> calls{0};
    WorkUnit u;
    u.key = "slow-then-fast";
    u.work = [&calls](const std::atomic<bool> &cancel) -> std::string {
        if (++calls == 1) {
            while (!cancel.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            throw CancelledError("first attempt hung");
        }
        return "second attempt quick";
    };
    HarnessReport rep = ctl.run({u});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(calls.load(), 2u);
    EXPECT_EQ(rep.results[0].attempts, 2u);
}

TEST(RunController, StopTokenSkipsUnstartedUnits)
{
    HarnessOptions h = testOptions();
    h.use_stop_token = true;
    h.jobs = 1; // everything queues behind the first unit
    clearStopRequest();
    RunController ctl(h, "test", "cfg=1");
    std::vector<WorkUnit> units;
    WorkUnit first;
    first.key = "stopper";
    first.work = [](const std::atomic<bool> &) {
        requestStop();
        return std::string("done-before-stop-took-effect");
    };
    units.push_back(first);
    for (int i = 0; i < 5; ++i)
        units.push_back(okUnit(strfmt("later%d", i), "p"));
    HarnessReport rep = ctl.run(units);
    clearStopRequest();
    // The in-flight unit finished; the queued ones were skipped.
    EXPECT_EQ(rep.results[0].status, CellStatus::Ok);
    EXPECT_EQ(rep.skipped, 5u);
    EXPECT_TRUE(rep.stopped);
    EXPECT_EQ(rep.exitCode(), HarnessReport::kExitIncomplete);
    // The summary carries the resume hint only when journaled.
    EXPECT_EQ(rep.summary("t").find("--resume"), std::string::npos);
}

TEST(RunController, JournaledRunSkipsOkCellsOnResume)
{
    TempFile tmp("resume");
    HarnessOptions h = testOptions();
    h.journal_path = tmp.path();

    std::atomic<unsigned> calls{0};
    auto counting = [&calls](const std::string &key) {
        WorkUnit u;
        u.key = key;
        u.work = [&calls, key](const std::atomic<bool> &) {
            ++calls;
            return "payload-" + key;
        };
        return u;
    };

    {
        RunController ctl(h, "test", "cfg=1");
        HarnessReport rep = ctl.run({counting("a"), counting("b")});
        EXPECT_TRUE(rep.complete());
        EXPECT_EQ(calls.load(), 2u);
    }

    // Resume with one extra unit: only the new cell executes.
    h.resume = true;
    RunController ctl(h, "test", "cfg=1");
    HarnessReport rep =
        ctl.run({counting("a"), counting("b"), counting("c")});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_TRUE(rep.results[0].from_journal);
    EXPECT_TRUE(rep.results[1].from_journal);
    EXPECT_FALSE(rep.results[2].from_journal);
    EXPECT_EQ(rep.results[0].payload, "payload-a");
    EXPECT_EQ(rep.resumed_ok, 2u);
}

TEST(RunController, FailedCellsAreReRunOnResume)
{
    TempFile tmp("refail");
    HarnessOptions h = testOptions();
    h.journal_path = tmp.path();

    std::atomic<bool> heal{false};
    WorkUnit u;
    u.key = "healing";
    u.work = [&heal](const std::atomic<bool> &) -> std::string {
        if (!heal.load())
            throw std::runtime_error("not yet");
        return "healed";
    };

    {
        RunController ctl(h, "test", "cfg=1");
        HarnessReport rep = ctl.run({u});
        EXPECT_EQ(rep.failed, 1u);
        EXPECT_FALSE(rep.summary("t").empty());
    }

    // A resumed run gives non-ok cells a fresh chance.
    heal.store(true);
    h.resume = true;
    RunController ctl(h, "test", "cfg=1");
    HarnessReport rep = ctl.run({u});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(rep.results[0].payload, "healed");
    EXPECT_FALSE(rep.results[0].from_journal);
}

TEST(RunController, SummaryNamesResumeFlagWhenPartial)
{
    TempFile tmp("hint");
    HarnessOptions h = testOptions();
    h.journal_path = tmp.path();
    RunController ctl(h, "test", "cfg=1");
    WorkUnit bad;
    bad.key = "bad";
    bad.work = [](const std::atomic<bool> &) -> std::string {
        throw std::runtime_error("nope");
    };
    HarnessReport rep = ctl.run({bad});
    std::string hint = "--resume=" + tmp.path();
    EXPECT_NE(rep.summary("sweep").find(hint), std::string::npos);
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

TEST(CellContext, NoDurableHomeMeansNoCheckpointing)
{
    // Without a journal or ledger there is nowhere durable to put
    // snapshots: the context must say so, and both snapshot calls must
    // degrade to harmless no-ops.
    RunController ctl(testOptions(), "test", "cfg=1");
    WorkUnit u;
    u.key = "plain";
    u.work = [](const CellContext &ctx) -> std::string {
        EXPECT_FALSE(ctx.checkpointing());
        EXPECT_FALSE(ctx.loadSnapshot().has_value());
        EXPECT_FALSE(ctx.saveSnapshot("ignored"));
        return "ran";
    };
    HarnessReport rep = ctl.run({u});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(rep.results[0].payload, "ran");
}

TEST(CellContext, SnapshotSurvivesRetryAndIsDroppedOnSuccess)
{
    // Mid-cell progress must carry across a retry of the same cell:
    // attempt 1 checkpoints and dies, attempt 2 resumes from the
    // checkpoint — and once the cell lands ok in the journal, its
    // snapshot is garbage and must be cleaned up.
    TempFile tmp("snapretry");
    HarnessOptions h = testOptions();
    h.journal_path = tmp.path();
    h.retries = 1;
    RunController ctl(h, "test", "cfg=1");

    std::atomic<unsigned> calls{0};
    WorkUnit u;
    u.key = "cell";
    u.work = [&calls](const CellContext &ctx) -> std::string {
        EXPECT_TRUE(ctx.checkpointing());
        if (++calls == 1) {
            EXPECT_FALSE(ctx.loadSnapshot().has_value());
            EXPECT_TRUE(ctx.saveSnapshot("progress-token"));
            throw std::runtime_error("died mid-cell");
        }
        std::optional<std::string> snap = ctx.loadSnapshot();
        EXPECT_TRUE(snap.has_value());
        return snap ? *snap : "cold";
    };
    HarnessReport rep = ctl.run({u});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(calls.load(), 2u);
    EXPECT_EQ(rep.results[0].payload, "progress-token");
    // Drop-on-ok: the snapshot file is gone.
    EXPECT_FALSE(
        fileExists(tmp.path() + ".snaps/" + hexEncode("cell")));
    ::rmdir((tmp.path() + ".snaps").c_str());
}

TEST(CellContext, SnapshotSurvivesProcessDeathViaResume)
{
    // The --resume shape of the same property: the first "process"
    // checkpoints and fails; a second controller resuming the same
    // journal hands the new attempt the old snapshot.
    TempFile tmp("snapresume");
    HarnessOptions h = testOptions();
    h.journal_path = tmp.path();

    {
        RunController ctl(h, "test", "cfg=1");
        WorkUnit u;
        u.key = "cell";
        u.work = [](const CellContext &ctx) -> std::string {
            EXPECT_TRUE(ctx.saveSnapshot("banked-progress"));
            throw std::runtime_error("simulated kill");
        };
        HarnessReport rep = ctl.run({u});
        EXPECT_EQ(rep.failed, 1u);
    }
    ASSERT_TRUE(
        fileExists(tmp.path() + ".snaps/" + hexEncode("cell")));

    h.resume = true;
    RunController ctl(h, "test", "cfg=1");
    WorkUnit u;
    u.key = "cell";
    u.work = [](const CellContext &ctx) -> std::string {
        std::optional<std::string> snap = ctx.loadSnapshot();
        return snap ? *snap : "cold";
    };
    HarnessReport rep = ctl.run({u});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(rep.results[0].payload, "banked-progress");
    EXPECT_FALSE(
        fileExists(tmp.path() + ".snaps/" + hexEncode("cell")));
    ::rmdir((tmp.path() + ".snaps").c_str());
}

/** A scratch ledger directory. */
class TempLedger
{
  public:
    explicit TempLedger(const std::string &tag)
        : path_(testing::TempDir() + "cppc_ctl_ledger_" + tag + "_" +
                std::to_string(::getpid()))
    {
        ::mkdir(path_.c_str(), 0755);
    }
    ~TempLedger()
    {
        // Tests remove their own files; best-effort rmdir.
        ::rmdir(path_.c_str());
    }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

TEST(RunController, LedgerBreaksTornLeaseAndAdoptsSnapshot)
{
    // A peer died between creating its lease file (O_EXCL) and writing
    // the lease body: the cell looks Busy forever with an unreadable
    // lease.  The survivor must break the torn lease after the
    // timeout, reclaim the cell, and adopt the dead peer's published
    // snapshot — the warm-migration path end to end.
    TempLedger ledger("torn");
    const std::string key = "cell";

    // The dead peer's droppings: an empty lease file and a snapshot.
    {
        std::ofstream torn(ledger.file("lease." + hexEncode(key)));
        ASSERT_TRUE(torn.good());
    }
    {
        std::ofstream snap(ledger.file("snap." + hexEncode(key)));
        snap << "migrated-progress";
        ASSERT_TRUE(snap.good());
    }

    HarnessOptions h = testOptions();
    h.ledger_dir = ledger.path();
    h.worker_id = "survivor";
    h.lease_timeout_s = 0.2;
    h.ledger_poll_s = 0.05;
    RunController ctl(h, "test", "cfg=1");

    WorkUnit u;
    u.key = key;
    u.work = [](const CellContext &ctx) -> std::string {
        std::optional<std::string> snap = ctx.loadSnapshot();
        return snap ? *snap : "cold";
    };
    HarnessReport rep = ctl.run({u});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(rep.results[0].payload, "migrated-progress");
    // Snapshot dropped once the cell published ok.
    EXPECT_FALSE(fileExists(ledger.file("snap." + hexEncode(key))));

    // Clean the ledger's own files so the TempLedger rmdir succeeds.
    std::remove(ledger.file("cell." + hexEncode(key)).c_str());
    std::remove(ledger.file("lease." + hexEncode(key)).c_str());
}

TEST(RunController, EmptyRunIsCompleteAndExitsZero)
{
    RunController ctl(testOptions(), "test", "cfg=1");
    HarnessReport rep = ctl.run({});
    EXPECT_TRUE(rep.complete());
    EXPECT_EQ(rep.exitCode(), 0);
}

} // namespace
} // namespace cppc
