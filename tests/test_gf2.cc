#include <gtest/gtest.h>

#include "util/gf2.hh"
#include "util/rng.hh"

namespace cppc {
namespace {

TEST(Gf2, UniqueSmall)
{
    // x0 ^ x1 = 1, x1 = 1  ->  x0 = 0, x1 = 1
    Gf2System sys(2);
    sys.addEquation({0, 1}, true);
    sys.addEquation({1}, true);
    std::vector<bool> sol;
    EXPECT_EQ(sys.solve(sol), Gf2System::Solvability::Unique);
    EXPECT_FALSE(sol[0]);
    EXPECT_TRUE(sol[1]);
}

TEST(Gf2, Inconsistent)
{
    Gf2System sys(2);
    sys.addEquation({0, 1}, true);
    sys.addEquation({0, 1}, false);
    std::vector<bool> sol;
    EXPECT_EQ(sys.solve(sol), Gf2System::Solvability::Inconsistent);
}

TEST(Gf2, Ambiguous)
{
    Gf2System sys(3);
    sys.addEquation({0, 1}, true);
    sys.addEquation({1, 2}, false);
    std::vector<bool> sol;
    EXPECT_EQ(sys.solve(sol), Gf2System::Solvability::Ambiguous);
}

TEST(Gf2, RepeatedVariableCancels)
{
    // x0 ^ x0 ^ x1 = x1.
    Gf2System sys(2);
    sys.addEquation({0, 0, 1}, true);
    sys.addEquation({0}, false);
    std::vector<bool> sol;
    EXPECT_EQ(sys.solve(sol), Gf2System::Solvability::Unique);
    EXPECT_FALSE(sol[0]);
    EXPECT_TRUE(sol[1]);
}

TEST(Gf2, EmptyEquationConsistency)
{
    Gf2System sys(1);
    sys.addEquation({}, false); // 0 == 0, fine
    sys.addEquation({0}, true);
    std::vector<bool> sol;
    EXPECT_EQ(sys.solve(sol), Gf2System::Solvability::Unique);
    EXPECT_TRUE(sol[0]);
}

TEST(Gf2, EmptyEquationContradiction)
{
    Gf2System sys(1);
    sys.addEquation({}, true); // 0 == 1
    sys.addEquation({0}, true);
    std::vector<bool> sol;
    EXPECT_EQ(sys.solve(sol), Gf2System::Solvability::Inconsistent);
}

TEST(Gf2, RedundantEquationsStillUnique)
{
    Gf2System sys(2);
    sys.addEquation({0}, true);
    sys.addEquation({1}, false);
    sys.addEquation({0, 1}, true); // implied by the first two
    std::vector<bool> sol;
    EXPECT_EQ(sys.solve(sol), Gf2System::Solvability::Unique);
    EXPECT_TRUE(sol[0]);
    EXPECT_FALSE(sol[1]);
}

class Gf2Random : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Gf2Random, RoundTripsPlantedSolution)
{
    // Plant a random solution, generate enough random equations to pin
    // it down, and check the solver recovers it exactly.
    unsigned n = GetParam();
    Rng rng(1000 + n);
    std::vector<bool> planted(n);
    for (unsigned i = 0; i < n; ++i)
        planted[i] = rng.chance(0.5);

    Gf2System sys(n);
    // Unit-diagonal upper-triangular rows guarantee full rank.
    for (unsigned i = 0; i < n; ++i) {
        std::vector<unsigned> vars{i};
        bool rhs = planted[i];
        for (unsigned j = 0; j < n; ++j) {
            if (j > i && rng.chance(0.3)) {
                vars.push_back(j);
                rhs = rhs ^ planted[j];
            }
        }
        sys.addEquation(vars, rhs);
    }
    std::vector<bool> sol;
    ASSERT_EQ(sys.solve(sol), Gf2System::Solvability::Unique);
    EXPECT_EQ(sol, planted);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Gf2Random,
                         ::testing::Values(1u, 2u, 5u, 16u, 64u, 128u,
                                           200u));

} // namespace
} // namespace cppc
