#include <gtest/gtest.h>

#include <initializer_list>
#include <set>
#include <vector>

#include "util/logging.hh"
#include "util/options.hh"

namespace cppc {
namespace {

Options
parse(std::initializer_list<const char *> args,
      std::set<std::string> known = {"alpha", "beta", "flag", "num",
                                     "rate"})
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    Options opt(std::move(known));
    opt.parse(static_cast<int>(argv.size()), argv.data());
    return opt;
}

TEST(Options, KeyEqualsValue)
{
    Options o = parse({"--alpha=hello", "--num=42"});
    EXPECT_EQ(o.getString("alpha"), "hello");
    EXPECT_EQ(o.getUint("num"), 42u);
}

TEST(Options, KeySpaceValue)
{
    Options o = parse({"--alpha", "world", "--num", "7"});
    EXPECT_EQ(o.getString("alpha"), "world");
    EXPECT_EQ(o.getUint("num"), 7u);
}

TEST(Options, BooleanFlagForms)
{
    EXPECT_TRUE(parse({"--flag"}).getBool("flag"));
    EXPECT_TRUE(parse({"--flag=true"}).getBool("flag"));
    EXPECT_TRUE(parse({"--flag=1"}).getBool("flag"));
    EXPECT_FALSE(parse({"--flag=false"}).getBool("flag"));
    EXPECT_FALSE(parse({"--flag=no"}).getBool("flag"));
    EXPECT_FALSE(parse({}).getBool("flag", false));
    EXPECT_TRUE(parse({}).getBool("flag", true));
}

TEST(Options, Defaults)
{
    Options o = parse({});
    EXPECT_EQ(o.getString("alpha", "dflt"), "dflt");
    EXPECT_EQ(o.getUint("num", 9), 9u);
    EXPECT_DOUBLE_EQ(o.getDouble("rate", 0.5), 0.5);
    EXPECT_FALSE(o.has("alpha"));
}

TEST(Options, DoubleParsing)
{
    Options o = parse({"--rate=0.125"});
    EXPECT_DOUBLE_EQ(o.getDouble("rate"), 0.125);
}

TEST(Options, HexIntegers)
{
    Options o = parse({"--num=0x40"});
    EXPECT_EQ(o.getUint("num"), 64u);
}

TEST(Options, Positional)
{
    Options o = parse({"runme", "--alpha=x", "afterwards"});
    ASSERT_EQ(o.positional().size(), 2u);
    EXPECT_EQ(o.positional()[0], "runme");
    EXPECT_EQ(o.positional()[1], "afterwards");
    EXPECT_EQ(o.program(), "prog");
}

TEST(Options, UnknownOptionRejected)
{
    EXPECT_THROW(parse({"--bogus=1"}), FatalError);
    EXPECT_THROW(parse({"--bogus"}), FatalError);
}

TEST(Options, MalformedValuesRejected)
{
    EXPECT_THROW(parse({"--num=abc"}).getUint("num"), FatalError);
    EXPECT_THROW(parse({"--rate=xyz"}).getDouble("rate"), FatalError);
    EXPECT_THROW(parse({"--flag=maybe"}).getBool("flag"), FatalError);
    EXPECT_THROW(parse({"--num=12junk"}).getUint("num"), FatalError);
}

TEST(Options, SignedValuesRejectedForUint)
{
    // strtoull would silently wrap "-1" to 2^64-1; the parser must
    // reject signs instead of handing that count to a thread pool.
    EXPECT_THROW(parse({"--num=-1"}).getUint("num"), FatalError);
    EXPECT_THROW(parse({"--num=+5"}).getUint("num"), FatalError);
    EXPECT_THROW(parse({"--num", "-1"}).getUint("num"), FatalError);
}

TEST(Options, StrayDashDashRejected)
{
    EXPECT_THROW(parse({"--"}), FatalError);
}

TEST(Options, LastValueWins)
{
    Options o = parse({"--alpha=one", "--alpha=two"});
    EXPECT_EQ(o.getString("alpha"), "two");
}

} // namespace
} // namespace cppc
