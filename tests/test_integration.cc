/**
 * @file
 * End-to-end integration: the full Table 1 hierarchy under trace
 * replay, with live fault injection, across all protection schemes.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "cppc/cppc_scheme.hh"
#include "fault/campaign.hh"
#include "sim/experiment.hh"

namespace cppc {
namespace {

TEST(Integration, ExperimentRunsForAllSchemes)
{
    const BenchmarkProfile &p = profileByName("gzip");
    ExperimentOptions opts;
    opts.instructions = 100000;
    for (SchemeKind kind : kAllSchemes) {
        RunMetrics m = runExperiment(p, kind, opts);
        EXPECT_EQ(m.core.instructions, opts.instructions);
        EXPECT_GT(m.core.cycles, 0u);
        EXPECT_GT(m.l1_energy.total(), 0.0);
        EXPECT_GT(m.l2_energy.total(), 0.0);
        EXPECT_GT(m.l1_miss_rate, 0.0);
        EXPECT_LT(m.l1_miss_rate, 1.0);
    }
}

TEST(Integration, ExperimentDeterministic)
{
    const BenchmarkProfile &p = profileByName("vpr");
    ExperimentOptions opts;
    opts.instructions = 50000;
    RunMetrics a = runExperiment(p, SchemeKind::Cppc, opts);
    RunMetrics b = runExperiment(p, SchemeKind::Cppc, opts);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_DOUBLE_EQ(a.l1_energy.total(), b.l1_energy.total());
}

TEST(Integration, DirtyProfilingPopulated)
{
    const BenchmarkProfile &p = profileByName("gcc");
    ExperimentOptions opts;
    opts.instructions = 200000;
    opts.profile_dirty = true;
    RunMetrics m = runExperiment(p, SchemeKind::Parity1D, opts);
    EXPECT_GT(m.l1_dirty_fraction, 0.0);
    EXPECT_LT(m.l1_dirty_fraction, 1.0);
    EXPECT_GT(m.l2_tavg_cycles, m.l1_tavg_cycles);
}

TEST(Integration, CppcInvariantHoldsAfterFullTraceReplay)
{
    Hierarchy h(SchemeKind::Cppc);
    OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(), h.l2.get());
    TraceGenerator gen(profileByName("gcc"), 21);
    core.run(gen, 300000);
    auto *l1 = static_cast<CppcScheme *>(h.l1d->scheme());
    auto *l2 = static_cast<CppcScheme *>(h.l2->scheme());
    EXPECT_TRUE(l1->invariantHolds());
    EXPECT_TRUE(l2->invariantHolds());
    EXPECT_EQ(l1->stats().detections, 0u);
    EXPECT_EQ(l2->stats().detections, 0u);
}

TEST(Integration, FaultDuringTrafficIsCorrectedAtL1)
{
    Hierarchy h(SchemeKind::Cppc);
    OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(), h.l2.get());
    TraceGenerator gen(profileByName("vortex"), 33);
    core.run(gen, 100000);

    // Strike a dirty L1 row mid-run, continue the trace: the fault must
    // be corrected transparently, never silently propagated.
    Row victim = 0;
    bool found = false;
    h.l1d->forEachValidRow([&](Row r, bool dirty) {
        if (dirty && !found) {
            victim = r;
            found = true;
        }
    });
    ASSERT_TRUE(found);
    uint64_t good = h.l1d->rowData(victim).toUint64();
    h.l1d->corruptBit(victim, 17);
    auto out = h.l1d->load(h.l1d->rowAddr(victim), 8, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.l1d->rowData(victim).toUint64(), good);

    core.run(gen, 100000); // keep going: no residue
    auto *l1 = static_cast<CppcScheme *>(h.l1d->scheme());
    EXPECT_TRUE(l1->invariantHolds());
}

TEST(Integration, FaultInL2CorrectedThroughHierarchy)
{
    Hierarchy h(SchemeKind::Cppc);
    OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(), h.l2.get());
    TraceGenerator gen(profileByName("twolf"), 44);
    core.run(gen, 200000);

    Row victim = 0;
    bool found = false;
    h.l2->forEachValidRow([&](Row r, bool dirty) {
        if (dirty && !found) {
            victim = r;
            found = true;
        }
    });
    ASSERT_TRUE(found);
    WideWord good = h.l2->rowData(victim);
    h.l2->corruptBit(victim, 100);
    // Touch it from the L2 side as an L1 fill would.
    auto out = h.l2->load(h.l2->rowAddr(victim), 32, nullptr);
    EXPECT_TRUE(out.fault_detected);
    EXPECT_FALSE(out.due);
    EXPECT_EQ(h.l2->rowData(victim), good);
}

TEST(Integration, CampaignAgainstLiveHierarchyL1)
{
    Hierarchy h(SchemeKind::Cppc);
    OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(), h.l2.get());
    TraceGenerator gen(profileByName("parser"), 55);
    core.run(gen, 150000);

    Campaign::Config cc;
    cc.injections = 300;
    cc.seed = 66;
    CampaignResult r = Campaign(*h.l1d, cc).run();
    EXPECT_EQ(r.sdc, 0u);
    EXPECT_EQ(r.due, 0u);
    EXPECT_EQ(r.corrected + r.benign, 300u);
}

TEST(Integration, MemoryImageConsistentAfterFlush)
{
    // Replay with faults corrected along the way, then flush both
    // levels: memory must contain exactly what an unprotected, fault-
    // free run would produce.
    auto run_image = [&](bool inject) {
        Hierarchy h(SchemeKind::Cppc);
        OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(),
                          h.l2.get());
        TraceGenerator gen(profileByName("crafty"), 77);
        core.run(gen, 100000);
        if (inject) {
            Rng rng(88);
            for (int i = 0; i < 50; ++i) {
                Row r = static_cast<Row>(
                    rng.nextBelow(h.l1d->geometry().numRows()));
                if (!h.l1d->rowValid(r))
                    continue;
                h.l1d->corruptBit(
                    r, static_cast<unsigned>(rng.nextBelow(64)));
                h.l1d->load(h.l1d->rowAddr(r), 8, nullptr);
            }
        }
        core.run(gen, 100000);
        h.l1d->flushAll();
        h.l2->flushAll();
        // Hash the touched memory range.
        uint64_t hash = 1469598103934665603ull;
        uint8_t buf[4096];
        for (Addr a = 0; a < (1u << 20); a += sizeof(buf)) {
            h.mem.peek(a, buf, sizeof(buf));
            for (uint8_t b : buf)
                hash = (hash ^ b) * 1099511628211ull;
        }
        return hash;
    };
    EXPECT_EQ(run_image(false), run_image(true));
}

TEST(Integration, SchemeNamesStable)
{
    EXPECT_EQ(schemeKindName(SchemeKind::Cppc), "cppc");
    EXPECT_EQ(schemeKindName(SchemeKind::Parity1D), "parity1d");
    EXPECT_EQ(schemeKindName(SchemeKind::Secded), "secded");
    EXPECT_EQ(schemeKindName(SchemeKind::Parity2D), "parity2d");
    EXPECT_EQ(schemeKindName(SchemeKind::None), "none");
}

} // namespace
} // namespace cppc
