#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "util/logging.hh"
#include "sim/paper_config.hh"

namespace cppc {
namespace {

/** A tiny controllable profile. */
BenchmarkProfile
tinyProfile(double load = 0.25, double store = 0.12)
{
    BenchmarkProfile p;
    p.name = "tiny";
    p.load_frac = load;
    p.store_frac = store;
    p.hot_bytes = 8 << 10;
    p.warm_bytes = 64 << 10;
    p.cold_bytes = 1 << 20;
    p.p_hot = 0.95;
    p.stride_frac = 0.2;
    p.chase_frac = 0.0;
    p.store_overwrite_bias = 0.4;
    return p;
}

CoreResult
runKind(SchemeKind kind, const BenchmarkProfile &p, uint64_t n = 200000,
        CoreParams params = PaperConfig::coreParams())
{
    Hierarchy h(kind);
    OooCoreModel core(params, h.l1d.get(), h.l2.get());
    TraceGenerator gen(p, 7);
    return core.run(gen, n);
}

TEST(Core, Deterministic)
{
    BenchmarkProfile p = tinyProfile();
    CoreResult a = runKind(SchemeKind::Cppc, p);
    CoreResult b = runKind(SchemeKind::Cppc, p);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.loads, b.loads);
}

TEST(Core, CpiAtLeastIssueBound)
{
    BenchmarkProfile p = tinyProfile();
    CoreResult r = runKind(SchemeKind::Parity1D, p);
    EXPECT_GE(r.cpi(), 1.0 / PaperConfig::coreParams().issue_width);
    EXPECT_LT(r.cpi(), 20.0);
}

TEST(Core, AluOnlyTraceRunsAtIssueWidth)
{
    BenchmarkProfile p = tinyProfile(0.0, 1e-9);
    p.store_frac = 1e-9; // effectively none
    CoreResult r = runKind(SchemeKind::Parity1D, p);
    EXPECT_NEAR(r.cpi(), 0.25, 0.01);
    EXPECT_EQ(r.load_stall_cycles, 0u);
}

TEST(Core, MissesCostCycles)
{
    BenchmarkProfile local = tinyProfile();
    BenchmarkProfile chasing = tinyProfile();
    chasing.chase_frac = 0.3;
    chasing.cold_bytes = 64 << 20;
    CoreResult a = runKind(SchemeKind::Parity1D, local);
    CoreResult b = runKind(SchemeKind::Parity1D, chasing);
    EXPECT_GT(b.cpi(), a.cpi() * 2.0);
    EXPECT_GT(b.load_stall_cycles, a.load_stall_cycles);
}

TEST(Core, SchemeOrderingOnCpi)
{
    // Figure 10's qualitative claim on any store-heavy workload:
    // parity <= cppc <= 2d parity.
    BenchmarkProfile p = tinyProfile(0.25, 0.2);
    double base = runKind(SchemeKind::Parity1D, p).cpi();
    double cppc = runKind(SchemeKind::Cppc, p).cpi();
    double twod = runKind(SchemeKind::Parity2D, p).cpi();
    EXPECT_LE(base, cppc);
    EXPECT_LT(cppc, twod);
    // And the overheads stay small in absolute terms.
    EXPECT_LT(cppc / base, 1.12); // extreme store-heavy synthetic case
    EXPECT_LT(twod / base, 1.40);
}

TEST(Core, PortConflictsOnlyWithRbwSchemes)
{
    BenchmarkProfile p = tinyProfile(0.25, 0.2);
    CoreResult base = runKind(SchemeKind::Parity1D, p);
    CoreResult cppc = runKind(SchemeKind::Cppc, p);
    EXPECT_EQ(base.port_conflict_cycles, 0u);
    EXPECT_GT(cppc.port_conflict_cycles, 0u);
}

TEST(Core, LsqBackPressureWithTinyQueue)
{
    CoreParams params = PaperConfig::coreParams();
    params.lsq_size = 1;
    BenchmarkProfile p = tinyProfile(0.1, 0.5); // store storm
    CoreResult r = runKind(SchemeKind::Parity2D, p, 100000, params);
    EXPECT_GT(r.lsq_stall_cycles, 0u);
}

TEST(Core, ProfilerSeesTraffic)
{
    Hierarchy h(SchemeKind::Cppc);
    OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(), h.l2.get());
    BenchmarkProfile p = tinyProfile();
    TraceGenerator gen(p, 9);
    DirtyProfiler l1p, l2p;
    core.run(gen, 300000, &l1p, &l2p);
    EXPECT_GT(l1p.avgDirtyFraction(), 0.0);
    EXPECT_GT(l1p.tavgSamples(), 100u);
    EXPECT_GT(l1p.tavgCycles(), 0.0);
    EXPECT_GT(l2p.tavgCycles(), l1p.tavgCycles());
}

TEST(Core, CountsMatchTraceMix)
{
    BenchmarkProfile p = tinyProfile();
    CoreResult r = runKind(SchemeKind::Parity1D, p, 300000);
    EXPECT_NEAR(static_cast<double>(r.loads) / 300000.0, p.load_frac,
                0.01);
    EXPECT_NEAR(static_cast<double>(r.stores) / 300000.0, p.store_frac,
                0.01);
}

TEST(Core, RequiresL1)
{
    EXPECT_THROW(OooCoreModel(PaperConfig::coreParams(), nullptr, nullptr),
                 FatalError);
}

TEST(Core, InstructionCacheFetchStalls)
{
    // A code footprint much larger than the 16KB L1I produces fetch
    // stalls; a tiny footprint produces almost none after warm-up.
    auto fetch_stalls = [&](uint64_t code_bytes) {
        Hierarchy h(SchemeKind::Parity1D);
        OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(),
                          h.l2.get(), h.l1i.get());
        BenchmarkProfile p = tinyProfile();
        p.code_bytes = code_bytes;
        p.branch_frac = 0.1;
        TraceGenerator gen(p, 3);
        return core.run(gen, 200000).fetch_stall_cycles;
    };
    EXPECT_GT(fetch_stalls(512ull << 10), 10 * fetch_stalls(8ull << 10));
}

TEST(Core, FetchModellingOptional)
{
    // Without an L1I the model behaves exactly as before.
    Hierarchy h(SchemeKind::Parity1D);
    OooCoreModel core(PaperConfig::coreParams(), h.l1d.get(), h.l2.get());
    BenchmarkProfile p = tinyProfile();
    TraceGenerator gen(p, 4);
    CoreResult r = core.run(gen, 100000);
    EXPECT_EQ(r.fetch_stall_cycles, 0u);
    EXPECT_EQ(h.l1i->stats().accesses(), 0u);
}

TEST(Core, InstructionAndDataStreamsDisjoint)
{
    // Code lives in its own region: no false sharing with data in the
    // unified L2.
    BenchmarkProfile p = tinyProfile();
    TraceGenerator gen(p, 5);
    for (int i = 0; i < 10000; ++i) {
        TraceRecord rec = gen.next();
        EXPECT_GE(rec.pc, 1ull << 40);
        if (rec.op != Op::Alu) {
            EXPECT_LT(rec.addr, 1ull << 40);
        }
    }
}

} // namespace
} // namespace cppc
